"""Analytic model of the suspension process (paper section 6.1).

When the regulated process is progressing *well*, occasional type-I errors
still judge it poor (probability ``alpha`` per judgment) and suspend it;
a subsequent good judgment (probability ``beta`` of clearing a marginal
state, per judgment) resets the backoff.  The paper observes that the
resulting suspension state is a birth-death system isomorphic to a bulk
service queue of infinite group size with arrival rate ``alpha`` and bulk
service rate ``beta``:

* Eq. (1): the minimum testpoints per poor judgment,
  ``m = ceil(log2(1/alpha))``;
* Eq. (2): steady-state probability of ``k`` consecutive poor judgments,
  ``p_k = (beta / (alpha + beta)) * (alpha / (alpha + beta))**k``;
* Eq. (3): mean steady-state fraction of time suspended,
  ``alpha*beta*s / (alpha*beta*s + m*(beta - alpha))`` where ``s`` is the
  initial suspension measured in testpoint intervals.

The system is unstable unless ``alpha < beta``: the geometric series behind
Eq. (3) (expected backoff factor ``E[2**k] = beta / (beta - alpha)``)
diverges otherwise, meaning suspension times grow without bound even on an
idle machine.

This module provides the closed forms, cap-aware variants, and a Monte
Carlo simulator of the judgment chain used by the test suite and the
``bench_analytic_model`` benchmark to cross-check theory against behaviour.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.signtest import min_poor_samples
from repro.core.suspension import capped_backoff

#: Base seed for :func:`simulate_judgment_chain`'s default stream.  Each
#: trial's ``seed`` is folded into this with an odd multiplier (a
#: Weyl-sequence step) so neighbouring seeds land on well-separated Random
#: states instead of sharing one module-default stream.
_CHAIN_SEED_BASE = 0x5EED
_CHAIN_SEED_STEP = 0x9E3779B97F4A7C15

__all__ = [
    "is_stable",
    "steady_state_distribution",
    "expected_backoff_factor",
    "expected_suspension",
    "suspended_fraction",
    "duty_cycle",
    "reaction_time",
    "suspension_overshoot",
    "worst_case_overshoot",
    "ChainResult",
    "derive_chain_rng",
    "simulate_judgment_chain",
]


def derive_chain_rng(seed: int | None) -> random.Random:
    """Build an isolated judgment-chain RNG from a trial seed.

    ``None`` reproduces the module's historical default stream.  Otherwise
    the seed is mixed with a large odd constant so that consecutive trial
    seeds (0, 1, 2, ...) yield decorrelated :class:`random.Random` states;
    each caller gets a private stream, never a shared module-level one.
    """
    if seed is None:
        return random.Random(_CHAIN_SEED_BASE)
    return random.Random(_CHAIN_SEED_BASE ^ (int(seed) * _CHAIN_SEED_STEP))


def _check(alpha: float, beta: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 < beta < 1.0:
        raise ConfigError(f"beta must be in (0, 1), got {beta}")


def is_stable(alpha: float, beta: float) -> bool:
    """Whether the suspension process has a steady state (``alpha < beta``)."""
    _check(alpha, beta)
    return alpha < beta


def steady_state_distribution(alpha: float, beta: float, k_max: int) -> list[float]:
    """Eq. (2): ``p_k`` for ``k = 0 .. k_max`` (requires stability)."""
    _check(alpha, beta)
    if k_max < 0:
        raise ValueError(f"k_max must be non-negative, got {k_max}")
    base = beta / (alpha + beta)
    ratio = alpha / (alpha + beta)
    return [base * ratio**k for k in range(k_max + 1)]


def expected_backoff_factor(alpha: float, beta: float) -> float:
    """``E[2**k]`` under Eq. (2): ``beta / (beta - alpha)``.

    Diverges (returns ``inf``) when the system is unstable — the formal
    statement of the paper's ``alpha < beta`` stability requirement, since
    the geometric series ``sum p_k 2**k`` has ratio ``2*alpha/(alpha+beta)``.
    """
    _check(alpha, beta)
    if alpha >= beta:
        return math.inf
    return beta / (beta - alpha)


def expected_suspension(
    alpha: float,
    beta: float,
    initial: float = 1.0,
    maximum: float = math.inf,
    k_max: int = 512,
) -> float:
    """Expected suspension imposed per judgment, in seconds.

    ``sum_k p_k * alpha * min(initial * 2**k, maximum)`` — the next judgment
    is poor with probability ``alpha`` and imposes the state-``k`` backoff.
    With no cap and stability, this is ``alpha * initial * beta/(beta-alpha)``.
    The cap keeps the expectation finite even for unstable parameters.
    """
    _check(alpha, beta)
    if initial <= 0:
        raise ConfigError(f"initial suspension must be positive, got {initial}")
    if math.isinf(maximum) and alpha < beta:
        return alpha * initial * expected_backoff_factor(alpha, beta)
    if math.isinf(maximum):
        return math.inf
    total = 0.0
    base = beta / (alpha + beta)
    ratio = alpha / (alpha + beta)
    pk = base
    for k in range(k_max + 1):
        # capped_backoff rather than ``min(initial * 2.0**k, maximum)``:
        # the naive form raises OverflowError once k exceeds 1023.
        total += pk * alpha * capped_backoff(initial, k, maximum)
        pk *= ratio
    # Tail beyond k_max is all capped at ``maximum``.
    total += (pk / (1.0 - ratio)) * alpha * maximum
    return total


def suspended_fraction(
    alpha: float,
    beta: float,
    suspension_intervals: float = 1.0,
) -> float:
    """Eq. (3): mean steady-state fraction of time suspended (good progress).

    ``suspension_intervals`` is the initial suspension time measured in
    testpoint intervals (``s = initial_suspension / testpoint_interval``);
    the paper's displayed form is the ``s = 1`` case.  Returns 1.0 for
    unstable parameters.
    """
    _check(alpha, beta)
    if suspension_intervals <= 0:
        raise ConfigError(
            f"suspension_intervals must be positive, got {suspension_intervals}"
        )
    if alpha >= beta:
        return 1.0
    m = min_poor_samples(alpha)
    numerator = alpha * beta * suspension_intervals
    return numerator / (numerator + m * (beta - alpha))


def duty_cycle(alpha: float, beta: float, suspension_intervals: float = 1.0) -> float:
    """Complement of :func:`suspended_fraction`: fraction of time executing."""
    return 1.0 - suspended_fraction(alpha, beta, suspension_intervals)


def reaction_time(alpha: float, testpoint_interval: float) -> float:
    """Fastest recognition of poor progress: ``m`` testpoint intervals.

    With the paper's ``alpha = 0.05`` (``m = 5``) and a few-hundred-
    millisecond cadence this is "a few seconds" (section 6.1).
    """
    if testpoint_interval <= 0:
        raise ConfigError(
            f"testpoint_interval must be positive, got {testpoint_interval}"
        )
    return min_poor_samples(alpha) * testpoint_interval


def suspension_overshoot(
    activity_duration: float,
    initial: float = 1.0,
    maximum: float = 256.0,
    judgment_time: float = 1.5,
) -> float:
    """Deterministic-ladder model of Figure 7's suspension overshoot.

    Once high-importance activity begins, the regulator alternates
    judgment phases (``judgment_time`` of execution probing, e.g. the
    minimum ``m`` testpoints) with suspensions that double from
    ``initial`` up to ``maximum``.  If the activity lasts
    ``activity_duration`` seconds, the low-importance process resumes at
    the end of the suspension in progress when the activity ends; the
    *overshoot* is how far past the end that is.

    This is the paper's "nearly worst case" arithmetic: the reported
    ~220 s overshoot is one 256 s suspension minus the sliver of activity
    it outlived.  The model is deterministic (every probe during activity
    is judged poor after exactly one judgment phase); stochastic judgment
    lengths shift the probe times but not the envelope.
    """
    if activity_duration < 0:
        raise ValueError(f"activity_duration must be non-negative: {activity_duration}")
    if initial <= 0 or maximum < initial:
        raise ConfigError("need 0 < initial <= maximum")
    if judgment_time < 0:
        raise ValueError(f"judgment_time must be non-negative: {judgment_time}")
    t = 0.0
    suspension = initial
    while True:
        # A judgment phase: probing executes until condemned.
        t += judgment_time
        if t >= activity_duration:
            # The activity ended while probing: no overshoot.
            return 0.0
        # Suspended for the current interval.
        t += suspension
        if t >= activity_duration:
            return t - activity_duration
        suspension = min(suspension * 2.0, maximum)


def worst_case_overshoot(maximum: float = 256.0) -> float:
    """Upper bound on resumption latency: one maximum suspension."""
    if maximum <= 0:
        raise ConfigError(f"maximum must be positive, got {maximum}")
    return maximum


@dataclass(frozen=True, slots=True)
class ChainResult:
    """Outcome of a Monte Carlo run of the judgment chain."""

    judgments: int
    executing_time: float
    suspended_time: float
    state_counts: tuple[int, ...]

    @property
    def suspended_fraction(self) -> float:
        """Empirical fraction of time suspended."""
        total = self.executing_time + self.suspended_time
        return self.suspended_time / total if total > 0 else 0.0

    @property
    def state_distribution(self) -> tuple[float, ...]:
        """Empirical distribution over consecutive-poor counts."""
        total = sum(self.state_counts)
        if total == 0:
            return ()
        return tuple(c / total for c in self.state_counts)


def simulate_judgment_chain(
    alpha: float,
    beta: float,
    judgments: int,
    initial: float = 1.0,
    maximum: float = math.inf,
    samples_per_judgment: float | None = None,
    testpoint_interval: float = 1.0,
    rng: random.Random | None = None,
    seed: int | None = None,
    k_track: int = 32,
) -> ChainResult:
    """Monte Carlo the suspension chain under *good* true progress.

    Each judgment is poor with probability ``alpha`` and good with
    probability ``beta`` (otherwise the test stays indeterminate and another
    batch of samples is collected); each judgment attempt costs
    ``samples_per_judgment`` testpoint intervals of execution (default: the
    minimum ``m`` from Eq. 1) and a poor judgment additionally costs the
    current backoff in suspension.

    Randomness is isolated per call: pass either an explicit ``rng`` or a
    ``seed`` from which a private, seed-derived stream is built.  Two calls
    with the same ``seed`` are bit-identical; different seeds get
    well-separated streams, so a sweep of trials produces the same digests
    whether it runs serially or fanned out across processes.  With neither
    argument, the historical default stream (seed ``0x5EED``) is used.
    """
    _check(alpha, beta)
    if judgments < 1:
        raise ValueError(f"judgments must be >= 1, got {judgments}")
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if rng is None:
        rng = derive_chain_rng(seed)
    m = samples_per_judgment if samples_per_judgment is not None else min_poor_samples(alpha)
    executing = 0.0
    suspended = 0.0
    k = 0
    counts = [0] * (k_track + 1)
    done = 0
    # Track the current backoff incrementally, exactly as SuspensionTimer
    # does: ``initial * 2.0**k`` raises OverflowError past k = 1023, while
    # repeated doubling saturates cleanly (at ``maximum`` when capped, at
    # float infinity for the uncapped analytic case).
    backoff = min(initial, maximum)
    while done < judgments:
        counts[min(k, k_track)] += 1
        executing += m * testpoint_interval
        u = rng.random()
        if u < alpha:
            suspended += backoff
            backoff = min(backoff * 2.0, maximum)
            k += 1
            done += 1
        elif u < alpha + beta:
            k = 0
            backoff = min(initial, maximum)
            done += 1
        # else indeterminate: loop, collecting another batch.
    return ChainResult(
        judgments=done,
        executing_time=executing,
        suspended_time=suspended,
        state_counts=tuple(counts),
    )
