"""Exception hierarchy for the MS Manners control system.

All exceptions raised by :mod:`repro.core` derive from :class:`MannersError`
so that callers can catch regulation failures with a single handler without
masking unrelated programming errors.
"""

from __future__ import annotations


class MannersError(Exception):
    """Base class for every error raised by the regulation library."""


class ConfigError(MannersError, ValueError):
    """A configuration parameter is out of its valid domain.

    Raised eagerly at construction time (never during regulation) so that a
    misconfigured regulator fails before it has had a chance to mis-regulate
    a live process.
    """


class MetricError(MannersError, ValueError):
    """A testpoint supplied malformed progress metrics.

    Examples: a negative progress delta, a metric count that does not match
    the metric set's declared arity, or an unknown metric-set index.
    """


class ClockError(MannersError, RuntimeError):
    """The clock moved backwards or produced a non-finite reading."""


class PersistenceError(MannersError, RuntimeError):
    """Target-rate state could not be loaded from or saved to stable storage."""


class RegulationStateError(MannersError, RuntimeError):
    """An operation was attempted in an invalid regulator state.

    For example, reporting a testpoint for a thread that was never
    registered with the supervisor, or resuming a thread that is not
    suspended.
    """


class FaultError(MannersError, ValueError):
    """A fault-injection plan or scenario is malformed.

    Raised by :mod:`repro.faults` for unknown scenario names, fault kinds
    outside the supported vocabulary, or specs with invalid parameters —
    never by the resilience layer itself, which degrades instead of raising.
    """
