"""Configuration for the MS Manners control system.

The paper's tuning parameters (SOSP'99, sections 6.1-6.3 and 7.1) are
collected into a single validated dataclass, :class:`MannersConfig`.  The
defaults reproduce the values the authors report using in their performance
experiments:

* ``alpha = 0.05`` and ``beta = 0.2`` — the sign-test error probabilities
  (section 6.1).  The paper notes the system is unstable unless
  ``alpha < beta``; :meth:`MannersConfig.validate` enforces this.
* ``averaging_n = 10_000`` — the exponential-averaging window (section 6.2),
  giving a smoothing time constant of tens of minutes and a tracking time
  constant of about a week at a few-hundred-millisecond testpoint cadence.
* ``ridge_nu = 0.1`` — the ridge-regression offset (section 6.3).

Durations are expressed in seconds of whatever clock drives the regulator
(wall-clock seconds for :mod:`repro.realtime`, simulated seconds for
:mod:`repro.simos`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.core.errors import ConfigError

__all__ = ["MannersConfig", "DEFAULT_CONFIG"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True, slots=True)
class MannersConfig:
    """Tuning parameters for progress-based regulation.

    Instances are immutable; use :meth:`with_overrides` to derive variants.
    Every constructor call validates the full parameter set and raises
    :class:`~repro.core.errors.ConfigError` on the first violation.
    """

    # --- statistical comparator (sections 4.2 and 6.1) ---------------------
    #: Type-I error probability: judging progress poor when it is good.
    alpha: float = 0.05
    #: Type-II error probability: judging progress good when it is poor.
    beta: float = 0.2
    #: Upper bound on the sign-test sample window.  The sequential sign test
    #: terminates with probability 1, but a pathological stream of samples
    #: exactly straddling the target could take arbitrarily long; after this
    #: many samples the window is restarted (no judgment is forced).
    max_sign_samples: int = 4096

    # --- suspension timer (section 4.1) ------------------------------------
    #: Suspension time applied on the first poor judgment, in seconds.
    initial_suspension: float = 1.0
    #: Cap on the exponentially doubled suspension time, in seconds.  Bounds
    #: the worst-case resumption latency after high-importance activity ends.
    max_suspension: float = 256.0

    # --- testpoint cadence (sections 4.1 and 7.1) ---------------------------
    #: Minimum interval between *processed* testpoints, in seconds.  Calls
    #: arriving faster than this take the lightweight path: they return
    #: immediately and their progress accumulates into the next processed
    #: testpoint.
    min_testpoint_interval: float = 0.1
    #: If a regulated thread does not testpoint within this many seconds it
    #: is presumed hung: another thread is selected to execute, and the
    #: progress-rate measurement spanning the gap is discarded when the
    #: thread eventually returns (section 7.1).
    hung_threshold: float = 30.0

    # --- automatic calibration (sections 4.3 and 6.2) -----------------------
    #: Exponential-averaging window ``n``; the decay factor is
    #: ``theta = (n - 1) / n`` (Eq. 5).
    averaging_n: int = 10_000
    #: Number of initial testpoints processed with no true regulation, used
    #: to bootstrap the target-rate estimate.
    bootstrap_testpoints: int = 32
    #: Length of the probationary period, in seconds, during which the
    #: execution rate is capped because the bootstrapped target may have been
    #: calibrated on a loaded system (section 4.3).
    probation_period: float = 3600.0
    #: Maximum fraction of time the process may execute while on probation.
    probation_duty: float = 0.25

    # --- multi-metric calibration (sections 4.4 and 6.3) --------------------
    #: Ridge-regression offset ``nu`` (Eq. 13-14); trades solution accuracy
    #: for numerical stability under correlated metrics.
    ridge_nu: float = 0.1
    #: Floor applied to inferred per-metric rates to keep target durations
    #: finite when the regression briefly assigns a metric no cost.
    min_metric_rate: float = 1e-9

    # --- thread orchestration (section 4.5 and 7.1) --------------------------
    #: Decay factor per scheduling decision for decay-usage scheduling among
    #: eligible regulated threads.
    usage_decay: float = 0.9

    # --- resilience guards (section 4.1 sanity checks; section 7.1) ----------
    #: A measured progress rate more than this many times above the
    #: calibrated target rate is treated as a measurement anomaly (clock
    #: glitch, counter burst from a torn read) and discarded without
    #: touching calibration or the sign test.
    rate_spike_factor: float = 1000.0
    #: Supervisor watchdog: a slot-owning thread that has not testpointed
    #: within this multiple of its typical testpoint spacing is presumed
    #: stalled and evicted so sibling threads keep running.  0 disables the
    #: watchdog (the coarse ``hung_threshold`` still applies).
    watchdog_multiplier: float = 0.0

    def __post_init__(self) -> None:
        self.validate()

    # -- public API ----------------------------------------------------------
    def validate(self) -> None:
        """Check every parameter; raise :class:`ConfigError` on violation."""
        _require(0.0 < self.alpha < 1.0, f"alpha must be in (0, 1), got {self.alpha}")
        _require(0.0 < self.beta < 1.0, f"beta must be in (0, 1), got {self.beta}")
        _require(
            self.alpha < self.beta,
            "regulation is unstable unless alpha < beta (paper section 6.1); "
            f"got alpha={self.alpha}, beta={self.beta}",
        )
        _require(self.max_sign_samples >= 8, "max_sign_samples must be >= 8")
        _require(
            math.isfinite(self.initial_suspension) and self.initial_suspension > 0,
            f"initial_suspension must be positive, got {self.initial_suspension}",
        )
        _require(
            math.isfinite(self.max_suspension)
            and self.max_suspension >= self.initial_suspension,
            "max_suspension must be finite and >= initial_suspension",
        )
        _require(
            self.min_testpoint_interval >= 0,
            "min_testpoint_interval must be non-negative",
        )
        _require(
            self.hung_threshold > self.min_testpoint_interval,
            "hung_threshold must exceed min_testpoint_interval",
        )
        _require(self.averaging_n >= 2, "averaging_n must be >= 2")
        _require(self.bootstrap_testpoints >= 1, "bootstrap_testpoints must be >= 1")
        _require(self.probation_period >= 0, "probation_period must be non-negative")
        _require(
            0.0 < self.probation_duty <= 1.0,
            f"probation_duty must be in (0, 1], got {self.probation_duty}",
        )
        _require(self.ridge_nu >= 0, "ridge_nu must be non-negative")
        _require(self.min_metric_rate > 0, "min_metric_rate must be positive")
        _require(0.0 < self.usage_decay < 1.0, "usage_decay must be in (0, 1)")
        _require(
            math.isfinite(self.rate_spike_factor) and self.rate_spike_factor > 1.0,
            f"rate_spike_factor must be finite and > 1, got {self.rate_spike_factor}",
        )
        _require(
            math.isfinite(self.watchdog_multiplier) and self.watchdog_multiplier >= 0.0,
            "watchdog_multiplier must be finite and non-negative "
            f"(0 disables), got {self.watchdog_multiplier}",
        )

    @property
    def theta(self) -> float:
        """Exponential-averaging decay factor, ``(n - 1) / n`` (Eq. 5)."""
        return (self.averaging_n - 1) / self.averaging_n

    @property
    def min_poor_samples(self) -> int:
        """Minimum samples for the sign test to recognize poor progress.

        Equation (1): ``m = ceil(log2(1 / alpha))``.  With the default
        ``alpha = 0.05`` this is 5 samples, matching the paper's few-second
        reaction time at a few-hundred-millisecond testpoint cadence.
        """
        return math.ceil(math.log2(1.0 / self.alpha))

    def smoothing_time_constant(self, testpoint_interval: float) -> float:
        """Eq. (6): short-term smoothing time constant ``Ts = n * interval``."""
        if testpoint_interval <= 0:
            raise ConfigError("testpoint_interval must be positive")
        return self.averaging_n * testpoint_interval

    def tracking_time_constant(self) -> float:
        """Eq. (7): long-term tracking time constant ``T = n / m * max_susp``."""
        return self.averaging_n / self.min_poor_samples * self.max_suspension

    def with_overrides(self, **overrides: Any) -> "MannersConfig":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides)

    def as_dict(self) -> Mapping[str, Any]:
        """Return the configuration as a plain dict (for persistence/logs)."""
        return {
            name: getattr(self, name)
            for name in self.__dataclass_fields__  # noqa: SLF001 - dataclass API
        }


#: A shared default configuration matching the paper's experimental values.
DEFAULT_CONFIG = MannersConfig()
