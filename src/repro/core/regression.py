"""Ridge regression over decayed sufficient statistics (paper section 6.3).

For applications that progress along several metrics concurrently, the
calibrator models the duration between testpoints as the sum of the times to
make each kind of progress (Eq. 8):

    d = sum_k (1 / r_k) * dp_k

and estimates the regression coefficients ``c_k = 1 / r_k`` by least squares
with no bias term.  The sufficient statistics are (Eqs. 9-10):

    x[i][j] = sum over samples of dp_i * dp_j
    y[i]    = sum over samples of d * dp_i

and are *exponentially averaged* rather than summed, so the inferred rates
track long-term changes in resource characteristics (Eqs. 11-12):

    x[i][j] <- theta * x[i][j] + dp_i * dp_j
    y[i]    <- theta * y[i]    + d * dp_i

Correlated metrics (common in practice: bytes read and read operations move
together) make the normal-equation matrix nearly singular, so the solver
applies *ridge regression* (Eqs. 13-14): before solving, it adds
``nu * q`` to each diagonal element, where ``q`` is the mean diagonal
magnitude.  The paper reports ``nu = 0.1`` balances the perturbation against
floating-point round-off.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigError, MetricError

__all__ = ["RidgeCalibrator"]


class RidgeCalibrator:
    """Infers per-metric target rates from (duration, progress-deltas) samples.

    One instance per metric set.  Feed samples with :meth:`update`; read the
    current estimates with :meth:`rates` or :meth:`coefficients`, and compute
    target durations for a new progress vector with :meth:`target_duration`.
    """

    __slots__ = (
        "_arity",
        "_theta",
        "_nu",
        "_min_rate",
        "_x",
        "_y",
        "_sum_dp",
        "_sum_d",
        "_count",
        "_median",
        "_telemetry",
        "_set_index",
    )

    def __init__(
        self,
        arity: int,
        theta: float,
        nu: float = 0.1,
        min_rate: float = 1e-9,
        telemetry=None,
        set_index: int = 0,
    ) -> None:
        if arity < 1:
            raise MetricError(f"metric set must have at least one metric, got {arity}")
        if not 0.0 <= theta < 1.0:
            raise ConfigError(f"theta must be in [0, 1), got {theta}")
        if nu < 0.0:
            raise ConfigError(f"nu must be non-negative, got {nu}")
        if min_rate <= 0.0:
            raise ConfigError(f"min_rate must be positive, got {min_rate}")
        self._arity = arity
        self._theta = theta
        self._nu = nu
        self._min_rate = min_rate
        self._x = np.zeros((arity, arity), dtype=float)
        self._y = np.zeros(arity, dtype=float)
        # Decayed aggregate progress and duration, used to pin the solution's
        # scale: ridge shrinkage (and duration noise correlated with the
        # progress deltas) biases the raw least-squares coefficients low,
        # which would make typical samples look below-target even on an
        # idle system.  Rescaling the coefficient vector so that predicted
        # total duration matches observed total duration removes that bias
        # while keeping the regression's *apportioning* of cost among
        # correlated metrics.
        self._sum_dp = np.zeros(arity, dtype=float)
        self._sum_d = 0.0
        self._count = 0
        # Median correction: least squares estimates the *mean* cost, the
        # sign-test comparator judges against the *median* sample; see
        # repro.core.calibration.MedianScale.
        from repro.core.calibration import MedianScale

        self._median = MedianScale()
        self._telemetry = telemetry
        self._set_index = set_index

    # -- state -------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of metrics."""
        return self._arity

    @property
    def sample_count(self) -> int:
        """Samples folded into the sufficient statistics."""
        return self._count

    @property
    def sufficient_statistics(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the decayed statistics ``(x, y)`` (Eqs. 9-12)."""
        return self._x.copy(), self._y.copy()

    # -- persistence ----------------------------------------------------------------
    def export_state(self) -> dict:
        """Serializable snapshot (for :mod:`repro.core.persistence`)."""
        return {
            "x": self._x.tolist(),
            "y": self._y.tolist(),
            "sum_dp": self._sum_dp.tolist(),
            "sum_d": self._sum_d,
            "count": self._count,
            "median_scale": self._median.export_state(),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        x = np.asarray(state["x"], dtype=float)
        y = np.asarray(state["y"], dtype=float)
        if x.shape != (self._arity, self._arity) or y.shape != (self._arity,):
            raise MetricError(
                f"persisted state arity mismatch: x{x.shape}, y{y.shape}, "
                f"expected arity {self._arity}"
            )
        if not (np.isfinite(x).all() and np.isfinite(y).all()):
            raise MetricError("persisted regression state contains non-finite values")
        self._x = x
        self._y = y
        sum_dp = np.asarray(state.get("sum_dp", [0.0] * self._arity), dtype=float)
        if sum_dp.shape != (self._arity,) or not np.isfinite(sum_dp).all():
            raise MetricError("persisted regression aggregates are malformed")
        self._sum_dp = sum_dp
        self._sum_d = float(state.get("sum_d", 0.0))
        self._count = int(state.get("count", 0))
        if "median_scale" in state:
            self._median.import_state(state["median_scale"])

    # -- operation --------------------------------------------------------------------
    def update(self, duration: float, deltas: Sequence[float]) -> None:
        """Fold one testpoint sample into the decayed sufficient statistics."""
        if len(deltas) != self._arity:
            raise MetricError(
                f"expected {self._arity} metrics, got {len(deltas)}"
            )
        if not math.isfinite(duration) or duration < 0.0:
            raise MetricError(f"duration must be finite and non-negative: {duration}")
        dp = np.asarray(deltas, dtype=float)
        if not np.isfinite(dp).all() or (dp < 0).any():
            raise MetricError(f"progress deltas must be finite and non-negative: {deltas}")
        self._median.observe(duration, self._mean_duration(deltas))
        self._x *= self._theta
        self._y *= self._theta
        self._sum_dp *= self._theta
        self._x += np.outer(dp, dp)
        self._y += duration * dp
        self._sum_dp += dp
        self._sum_d = self._theta * self._sum_d + duration
        self._count += 1
        tel = self._telemetry
        if tel is not None:
            if tel.emitting:
                from repro.obs import events as obs_events

                tel.emit(
                    obs_events.TargetUpdated(
                        t=tel.now,
                        src=tel.label,
                        set_index=self._set_index,
                        sample_count=self._count,
                        target_rate=None,
                        scale=self._median.scale,
                    )
                )
            tel.metrics.gauge("calibration_scale").set(self._median.scale)

    def coefficients(self) -> np.ndarray:
        """Solve the ridge-regularized normal equations for ``c_k = 1/r_k``.

        Returns a vector of per-metric time costs (seconds per progress
        unit), clamped to be non-negative.  Before any sample has been seen,
        returns zeros (no inferred cost).
        """
        if self._count == 0:
            return np.zeros(self._arity, dtype=float)
        diag = np.abs(np.diagonal(self._x))
        if diag.max() <= 0.0:
            # No progress observed along any metric yet.
            return np.zeros(self._arity, dtype=float)
        # Standardized ridge: normalize each metric by sqrt of its diagonal
        # before applying the offset, so the perturbation is the same
        # *relative* size for every metric.  This is Eqs. (13)-(14) made
        # scale-invariant — with the paper's literal mean-diagonal offset,
        # a metric whose magnitude is orders of magnitude below another's
        # (indices counted in ones vs bytes counted in thousands) would be
        # annihilated by the offset rather than merely stabilized.
        scale = np.where(diag > 0.0, np.sqrt(diag), 1.0)
        a = self._x / np.outer(scale, scale)
        a[np.diag_indices_from(a)] += self._nu  # unit diagonal => Q = 1.
        b = self._y / scale
        try:
            c = np.linalg.solve(a, b) / scale
        except np.linalg.LinAlgError:
            # The ridge offset should prevent singularity; fall back to the
            # pseudo-inverse if numerical trouble slips through anyway.
            c = np.linalg.lstsq(a, b, rcond=None)[0] / scale
        # A metric can transiently receive a small negative cost when it is
        # strongly anti-correlated with another; a negative time-per-unit is
        # physically meaningless, so clamp.
        c = np.maximum(c, 0.0)
        # Pin the scale: predicted aggregate duration must equal the observed
        # aggregate duration (see the constructor comment).
        predicted = float(np.dot(c, self._sum_dp))
        if predicted > 0.0 and self._sum_d > 0.0:
            c *= self._sum_d / predicted
        return c

    def rates(self) -> np.ndarray:
        """Per-metric target rates ``r_k`` (progress units per second).

        The inverse of :meth:`coefficients`, floored at ``min_rate`` to keep
        target durations finite.  A metric whose inferred cost is zero gets
        an infinite rate (it contributes no target duration).
        """
        c = self.coefficients()
        rates = np.empty_like(c)
        for i, cost in enumerate(c):
            rates[i] = math.inf if cost <= 0.0 else 1.0 / cost
        return np.maximum(rates, self._min_rate)

    def _mean_duration(self, deltas: Sequence[float]) -> float:
        if len(deltas) != self._arity:
            raise MetricError(
                f"expected {self._arity} metrics, got {len(deltas)}"
            )
        c = self.coefficients()
        dp = np.asarray(deltas, dtype=float)
        return float(np.dot(c, dp))

    def target_duration(self, deltas: Sequence[float]) -> float:
        """Section 4.4: ``d_target = sum_k dp_k / r_k``, median-corrected."""
        return self._mean_duration(deltas) * self._median.scale
