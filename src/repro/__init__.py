"""repro — reproduction of "Progress-based regulation of low-importance processes".

John R. Douceur and William J. Bolosky, SOSP'99 (the "MS Manners" paper).

The package is organized as:

* :mod:`repro.core` — the control system itself: statistical rate
  comparison, automatic target calibration, exponential suspension,
  multi-metric regression, and multi-thread/process orchestration.
* :mod:`repro.simos` — a discrete-event simulated operating system (CPU
  scheduler, disk model, shared SCSI bus, filesystem with change journal,
  performance counters) on which the paper's experiments are reproduced.
* :mod:`repro.apps` — the paper's applications: disk defragmenter, SIS
  Groveler, database server, installer, dummy loads, and the section-5
  exemplar applications.
* :mod:`repro.benice` — external regulation of unmodified applications via
  performance counters.
* :mod:`repro.realtime` — a wall-clock adapter regulating real Python
  threads with the standard library only.
* :mod:`repro.analysis` — box-plot statistics, tables, and the experiment
  harness behind the benchmark suite.

Quick start::

    from repro import Manners

    manners = Manners()
    for chunk in work:
        handle(chunk)
        done += len(chunk)
        pause = manners.testpoint([done])
        if pause:
            time.sleep(pause)
"""

from repro.core import (
    DEFAULT_CONFIG,
    Judgment,
    Manners,
    MannersConfig,
    MannersError,
    Superintendent,
    Supervisor,
    TargetStore,
    TestpointDecision,
    ThreadRegulator,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "Judgment",
    "Manners",
    "MannersConfig",
    "MannersError",
    "Superintendent",
    "Supervisor",
    "TargetStore",
    "TestpointDecision",
    "ThreadRegulator",
    "__version__",
]
