"""The prior approaches of paper section 2, as runnable baselines.

"Many approaches to low-importance process regulation have been proposed
and implemented, such as scheduling for specific times, running as a
screen saver, scanning the system process queue, and various
resource-specific methods."

Each baseline here controls a set of low-importance threads through the
kernel's debug suspend/resume interface — no cooperation from the
application — exactly as an external system service would.  The related-
approaches benchmark runs them against MS Manners on the Figure-3 scenario
and regenerates section 2's qualitative claims quantitatively:

* :class:`ScheduledWindows` — "fails to exploit unanticipated idle times,
  and it fails to regulate during periods of unanticipated activity";
* :class:`InputIdleGate` — "a lack of user input ... is not valid for a
  server, which is often busy but which rarely receives direct user
  input";
* :class:`ProcessQueueGate` — "a high-importance process may be in the
  process queue without consuming significant resources ... this approach
  would never allow a low-importance process to run".

(The remaining section-2 approach, CPU priority, is a first-class
configuration of every experiment already; resource-specific kernels are
out of scope by the paper's own framing.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Sequence

from repro.simos.cpu import CpuPriority
from repro.simos.effects import Delay, Effect
from repro.simos.kernel import Kernel, SimThread
from repro.simos.workload import Burst

__all__ = ["ScheduledWindows", "InputIdleGate", "ProcessQueueGate"]

#: How often the gating baselines re-evaluate their condition, in seconds.
_POLL_INTERVAL = 1.0


@dataclass
class _GateStats:
    """Bookkeeping shared by the baselines."""

    suspensions: int = 0
    resumes: int = 0


class _GatedController:
    """Common machinery: poll a predicate, suspend/resume target threads."""

    def __init__(self, kernel: Kernel, targets: Sequence[SimThread], name: str) -> None:
        self._kernel = kernel
        self._targets = tuple(targets)
        self._name = name
        self._suspended = False
        self.stats = _GateStats()
        self.thread: SimThread | None = None

    def spawn(self) -> SimThread:
        """Start the controller thread."""
        self.thread = self._kernel.spawn(
            self._name,
            self._body(),
            priority=CpuPriority.NORMAL,
            process=self._name,
        )
        return self.thread

    def _may_run(self, now: float) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def _body(self) -> Generator[Effect, object, None]:
        # Apply the initial state immediately.
        while any(t.alive for t in self._targets):
            allowed = self._may_run(self._kernel.now)
            if allowed and self._suspended:
                for t in self._targets:
                    self._kernel.resume_thread(t)
                self._suspended = False
                self.stats.resumes += 1
            elif not allowed and not self._suspended:
                for t in self._targets:
                    self._kernel.suspend_thread(t)
                self._suspended = True
                self.stats.suspensions += 1
            yield Delay(_POLL_INTERVAL)


class ScheduledWindows(_GatedController):
    """Run the low-importance process only inside fixed time windows.

    The classic "defragment at 3 a.m." policy: effective exactly when the
    operator's guess about system activity is right, blind otherwise.
    """

    def __init__(
        self,
        kernel: Kernel,
        targets: Sequence[SimThread],
        windows: Sequence[Burst],
        name: str = "scheduler",
    ) -> None:
        super().__init__(kernel, targets, name)
        self._windows = tuple(windows)

    def _may_run(self, now: float) -> bool:
        return any(w.start <= now < w.end for w in self._windows)


class InputIdleGate(_GatedController):
    """Run only after a period with no user input (the screen-saver rule).

    ``last_input`` is a callable returning the time of the most recent
    keyboard/mouse event; on a server it may never advance — which is
    precisely the failure mode the paper calls out: the machine looks
    "idle" while the database is flat out.
    """

    def __init__(
        self,
        kernel: Kernel,
        targets: Sequence[SimThread],
        last_input: Callable[[], float],
        idle_threshold: float = 300.0,
        name: str = "screensaver",
    ) -> None:
        super().__init__(kernel, targets, name)
        self._last_input = last_input
        self._threshold = idle_threshold

    def _may_run(self, now: float) -> bool:
        return now - self._last_input() >= self._threshold


class ProcessQueueGate(_GatedController):
    """Run only when no high-importance process is in the system queue.

    ``hi_processes`` is a callable returning the currently *present*
    high-importance threads (present, not busy — the paper's point is that
    presence says nothing about resource consumption, so a continuously
    running database server starves the low-importance process forever).
    """

    def __init__(
        self,
        kernel: Kernel,
        targets: Sequence[SimThread],
        hi_processes: Callable[[], Sequence[SimThread]],
        name: str = "queuescan",
    ) -> None:
        super().__init__(kernel, targets, name)
        self._hi_processes = hi_processes

    def _may_run(self, now: float) -> bool:
        return not any(t.alive for t in self._hi_processes())
