"""Prior regulation approaches (paper section 2), as runnable baselines."""

from repro.strategies.baselines import InputIdleGate, ProcessQueueGate, ScheduledWindows

__all__ = ["InputIdleGate", "ProcessQueueGate", "ScheduledWindows"]
