"""Ablation: statistical sign-test comparator vs direct per-sample judging.

Section 4.2 argues that directly comparing each progress-rate measurement
to the target "may frequently make incorrect progress-rate judgments,
causing inappropriate suspension or execution of the process", and Figure 8
shows the noise that makes this so.  This bench runs the same regulated
low-importance workload on an *idle* machine under both comparators and
measures the inappropriate-suspension rate.
"""

from __future__ import annotations

from repro.core.comparator import DirectComparator
from repro.core.config import MannersConfig
from repro.core.signtest import Judgment
from repro.simos.effects import DiskRead
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import MannersTestpoint, SimManners

CONFIG = MannersConfig(
    bootstrap_testpoints=20,
    probation_period=0.0,
    averaging_n=400,
    min_testpoint_interval=0.1,
    initial_suspension=1.0,
    max_suspension=256.0,
)


def _reader(kernel, n):
    done = 0.0
    for i in range(n):
        yield DiskRead("C", (i * 37) % 500_000, 65536)
        done += 1.0
        yield MannersTestpoint((done,))


def run_one(direct: bool):
    kernel = Kernel(seed=5)
    kernel.add_disk("C")
    manners = SimManners(kernel, CONFIG)
    thread = kernel.spawn("li", _reader(kernel, 4000), process="li")
    comparator = DirectComparator() if direct else None
    regulator = manners.regulate(thread, comparator=comparator)
    kernel.run(until=3600.0)
    trace = manners.traces[thread]
    poors = sum(1 for r in trace.records if r.judgment is Judgment.POOR)
    processed = sum(1 for r in trace.records if r.judgment is not None)
    return {
        "finish_time": kernel.now if thread.alive else trace.records[-1].when,
        "poor_judgments": poors,
        "judged": processed,
        "total_suspension": regulator.stats.total_suspension,
        "finished": not thread.alive,
    }


def run_ablation():
    return {"statistical": run_one(direct=False), "direct": run_one(direct=True)}


def test_ablation_comparator(benchmark, report):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    stat = data["statistical"]
    direct = data["direct"]
    lines = [
        "Ablation: statistical comparator vs direct per-sample comparison",
        "=" * 68,
        f"{'':<26} {'statistical':>14} {'direct':>14}",
        f"{'poor judgments':<26} {stat['poor_judgments']:>14} {direct['poor_judgments']:>14}",
        f"{'total suspension (s)':<26} {stat['total_suspension']:>14.1f} "
        f"{direct['total_suspension']:>14.1f}",
        f"{'workload finished':<26} {str(stat['finished']):>14} {str(direct['finished']):>14}",
        "",
        "The machine is idle throughout: every suspension is inappropriate.",
        "Paper (section 4.2): without the statistical comparator, execution",
        "'would be overreactive and highly erratic'.",
    ]
    report("ablation_comparator", "\n".join(lines))

    assert stat["finished"], "statistical comparator must let the work finish"
    assert direct["poor_judgments"] > 10 * max(stat["poor_judgments"], 1)
    assert direct["total_suspension"] > 10 * max(stat["total_suspension"], 1.0)
