"""Ablation: statistical sign-test comparator vs direct per-sample judging.

Section 4.2 argues that directly comparing each progress-rate measurement
to the target "may frequently make incorrect progress-rate judgments,
causing inappropriate suspension or execution of the process", and Figure 8
shows the noise that makes this so.  This bench runs the same regulated
low-importance workload on an *idle* machine under both comparators and
measures the inappropriate-suspension rate.

The trial body lives in :mod:`repro.experiments.ablations`; this module
is a thin reference to the registered ``ablation_comparator``
:class:`~repro.experiments.spec.ExperimentSpec` (one trial per comparator
arm at the historical kernel seed, so outputs are bit-identical to the
pre-platform runs).
"""

from __future__ import annotations

from _util import run_spec


def run_ablation() -> dict[str, dict]:
    report = run_spec("ablation_comparator")
    return {
        cell["params"]["comparator"]: {
            metric: values[0] for metric, values in cell["samples"].items()
        }
        for cell in report["cells"]
    }


def test_ablation_comparator(benchmark, report):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    stat = data["statistical"]
    direct = data["direct"]
    lines = [
        "Ablation: statistical comparator vs direct per-sample comparison",
        "=" * 68,
        f"{'':<26} {'statistical':>14} {'direct':>14}",
        f"{'poor judgments':<26} {stat['poor_judgments']:>14} {direct['poor_judgments']:>14}",
        f"{'total suspension (s)':<26} {stat['total_suspension']:>14.1f} "
        f"{direct['total_suspension']:>14.1f}",
        f"{'workload finished':<26} {str(stat['finished']):>14} {str(direct['finished']):>14}",
        "",
        "The machine is idle throughout: every suspension is inappropriate.",
        "Paper (section 4.2): without the statistical comparator, execution",
        "'would be overreactive and highly erratic'.",
    ]
    report("ablation_comparator", "\n".join(lines))

    assert stat["finished"], "statistical comparator must let the work finish"
    assert direct["poor_judgments"] > 10 * max(stat["poor_judgments"], 1)
    assert direct["total_suspension"] > 10 * max(stat["total_suspension"], 1.0)
