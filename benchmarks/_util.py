"""Helpers shared by the benchmark modules (env-driven sizing)."""

from __future__ import annotations

import os


def bench_trials(default: int = 5) -> int:
    """Trials per configuration (``REPRO_TRIALS``; the paper uses 50)."""
    return int(os.environ.get("REPRO_TRIALS", default))


def bench_scale(default: float = 1.0) -> float:
    """Workload scale (``REPRO_SCALE``; 1.0 = paper-magnitude run times)."""
    return float(os.environ.get("REPRO_SCALE", default))


def full_run() -> bool:
    """Whether to run the long-form experiments (``REPRO_FULL=1``)."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")
