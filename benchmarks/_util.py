"""Helpers shared by the benchmark modules (env-driven sizing + fan-out).

Every ``bench_*`` module sizes itself from the environment and drives its
repeated trials through :func:`run_bench_trials`, which routes them into
the parallel trial engine (:mod:`repro.analysis.parallel`):

* ``REPRO_TRIALS`` — trials per configuration (paper uses 50);
* ``REPRO_SCALE`` — workload scale (1.0 = paper-magnitude run times);
* ``REPRO_JOBS`` — worker processes for trial fan-out (default 1 here, so
  a plain pytest run stays single-process and exactly reproduces the
  serial results; set ``REPRO_JOBS=4`` to use four cores);
* ``REPRO_CACHE`` — set to ``0`` to disable the content-keyed trial cache
  under ``benchmarks/results/cache/`` (enabled by default: re-running an
  unchanged sweep skips completed trials).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable

from repro.analysis.parallel import TrialCache, resolve_jobs
from repro.analysis.runner import run_trials, trial_count

#: Benchmark trial cache location, next to the persisted reports.
CACHE_DIR = Path(__file__).parent / "results" / "cache"


def bench_trials(default: int = 5) -> int:
    """Trials per configuration (``REPRO_TRIALS``; the paper uses 50).

    Validates ``REPRO_TRIALS >= 1`` with the same :class:`ValueError` as
    :func:`repro.analysis.runner.trial_count`.
    """
    return trial_count(default)


def bench_scale(default: float = 1.0) -> float:
    """Workload scale (``REPRO_SCALE``; 1.0 = paper-magnitude run times)."""
    return float(os.environ.get("REPRO_SCALE", default))


def bench_jobs(default: int = 1) -> int:
    """Worker processes for trial fan-out (``REPRO_JOBS``; default serial)."""
    return resolve_jobs(None, default=default)


def bench_cache() -> TrialCache | None:
    """The benchmark trial cache, or ``None`` when ``REPRO_CACHE=0``."""
    if os.environ.get("REPRO_CACHE", "1") in ("0", "", "false"):
        return None
    return TrialCache(CACHE_DIR)


def full_run() -> bool:
    """Whether to run the long-form experiments (``REPRO_FULL=1``)."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


def run_bench_trials(
    trial: Callable[..., Any],
    trials: int | None = None,
    seed_base: int = 1000,
    cache_name: str | None = None,
    cache_config: Any = None,
) -> list[Any]:
    """Fan ``trial(seed)`` out for a benchmark: parallel + cached.

    The shared execution path of every ``bench_*`` module: honours
    ``REPRO_JOBS`` (parallel trials need a picklable ``trial``) and, when
    ``cache_name`` is given, the trial cache (results must then be
    JSON-safe).  Serial, cache-off runs are bit-identical to the historic
    inline loops.
    """
    return run_trials(
        trial,
        trials=trials if trials is not None else bench_trials(),
        seed_base=seed_base,
        jobs=bench_jobs(),
        cache=bench_cache() if cache_name is not None else None,
        cache_name=cache_name,
        cache_config=cache_config,
    )


def sweep(
    scenario: str,
    modes,
    metric: str,
    seed_base: int,
    trials: int | None = None,
) -> dict[str, list[float]]:
    """Per-mode ``metric`` samples for a measured scenario (cached, parallel).

    Thin wrapper over :func:`repro.experiments.scenarios.mode_sweep` wired
    to the benchmark environment (trials, scale, jobs, cache).
    """
    from repro.experiments.scenarios import mode_sweep

    return mode_sweep(
        scenario,
        modes,
        metric,
        trials=trials if trials is not None else bench_trials(),
        seed_base=seed_base,
        scale=bench_scale(),
        jobs=bench_jobs(),
        cache=bench_cache(),
    )
