"""Helpers shared by the benchmark modules (env-driven sizing + fan-out).

Every ``bench_*`` module sizes itself from the environment and drives its
repeated trials through :func:`run_bench_trials` or :func:`run_spec`,
which route them into the parallel trial engine
(:mod:`repro.analysis.parallel`):

* ``REPRO_TRIALS`` — trials per configuration (paper uses 50);
* ``REPRO_SCALE`` — workload scale (1.0 = paper-magnitude run times);
* ``REPRO_JOBS`` — worker processes for trial fan-out (default 1 here, so
  a plain pytest run stays single-process and exactly reproduces the
  serial results; set ``REPRO_JOBS=4`` to use four cores);
* ``REPRO_CACHE`` — set to ``0``/``false``/``no``/``off`` to disable the
  content-keyed trial cache under ``benchmarks/results/cache/`` (enabled
  by default: re-running an unchanged sweep skips completed trials).

All env parsing goes through :mod:`repro.analysis.env`, so malformed
values fail loudly with the variable name and the offending value instead
of being silently mis-read.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.analysis.env import env_flag, env_scale
from repro.analysis.parallel import TrialCache, resolve_jobs
from repro.analysis.runner import run_trials, trial_count

#: Benchmark trial cache location, next to the persisted reports.
CACHE_DIR = Path(__file__).parent / "results" / "cache"


def bench_trials(default: int = 5) -> int:
    """Trials per configuration (``REPRO_TRIALS``; the paper uses 50).

    Validates ``REPRO_TRIALS >= 1`` with the same :class:`ValueError` as
    :func:`repro.analysis.runner.trial_count`.
    """
    return trial_count(default)


def bench_scale(default: float = 1.0) -> float:
    """Workload scale (``REPRO_SCALE``; 1.0 = paper-magnitude run times).

    Validated finite-and-positive: ``REPRO_SCALE=0`` used to silently
    collapse every workload to its minimum size; now it raises the same
    style of :class:`ValueError` as :func:`bench_trials`.
    """
    return env_scale(default=default)


def bench_jobs(default: int = 1) -> int:
    """Worker processes for trial fan-out (``REPRO_JOBS``; default serial)."""
    return resolve_jobs(None, default=default)


def bench_cache() -> TrialCache | None:
    """The benchmark trial cache, or ``None`` when ``REPRO_CACHE`` is falsy.

    ``REPRO_CACHE`` accepts ``0/false/no/off`` and ``1/true/yes/on``, any
    capitalization; anything else raises (``REPRO_CACHE=False`` used to
    silently *enable* the cache).
    """
    if not env_flag("REPRO_CACHE", default=True):
        return None
    return TrialCache(CACHE_DIR)


def full_run() -> bool:
    """Whether to run the long-form experiments (``REPRO_FULL=1``)."""
    return env_flag("REPRO_FULL", default=False)


def run_bench_trials(
    trial: Callable[..., Any],
    trials: int | None = None,
    seed_base: int = 1000,
    cache_name: str | None = None,
    cache_config: Any = None,
) -> list[Any]:
    """Fan ``trial(seed)`` out for a benchmark: parallel + cached.

    The shared execution path of every ``bench_*`` module: honours
    ``REPRO_JOBS`` (parallel trials need a picklable ``trial``) and, when
    ``cache_name`` is given, the trial cache (results must then be
    JSON-safe).  Serial, cache-off runs are bit-identical to the historic
    inline loops.
    """
    return run_trials(
        trial,
        trials=trials if trials is not None else bench_trials(),
        seed_base=seed_base,
        jobs=bench_jobs(),
        cache=bench_cache() if cache_name is not None else None,
        cache_name=cache_name,
        cache_config=cache_config,
    )


def run_spec(name: str, trials: int | None = None) -> dict:
    """Run one registered :class:`~repro.experiments.spec.ExperimentSpec`
    wired to the benchmark environment (trials, scale, jobs, cache).

    The spec-driven path every figure bench now uses: same seeds, same
    trial functions, same cache namespaces as the hand-rolled sweeps they
    replaced, so samples are bit-identical to the pre-platform outputs.
    """
    from repro.experiments.spec import get_experiment, run_experiment

    # Scale resolves inside the spec (pinned value, else REPRO_SCALE, else
    # 1.0) so a spec-pinned scale is not clobbered by the env default.
    return run_experiment(
        get_experiment(name),
        trials=trials,
        jobs=bench_jobs(),
        cache=bench_cache(),
    )


def spec_samples(name: str, metric: str, trials: int | None = None) -> dict[str, list]:
    """``{cell: samples}`` of one metric from a spec run — the
    :func:`repro.analysis.runner.aggregate`-ready shape the figure benches
    consume (mode-keyed for the single-variable contention sweeps).
    """
    from repro.experiments.spec import samples_by_cell

    return samples_by_cell(run_spec(name, trials=trials), metric)
