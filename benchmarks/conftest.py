"""Shared configuration for the benchmark/experiment harness.

Each ``bench_*`` module regenerates one table or figure from the paper's
section 9 (plus the analytic model and the ablations).  Benchmarks:

* honour ``REPRO_TRIALS`` (trials per configuration; paper uses 50 for the
  automated experiments — default here is 5 to keep a full run in minutes)
  and ``REPRO_SCALE`` (workload scale; 1.0 = paper-magnitude run times);
* print the regenerated rows/series next to the paper's numbers;
* persist the same report under ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only                 # quick
    REPRO_TRIALS=50 REPRO_SCALE=1.0 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Print a report block and persist it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _report
