"""Micro-benchmarks for the simulator and comparator hot paths.

Two optimizations carry every trial (docs/performance.md):

* the event engine's O(1) pending counter and cancelled-entry compaction,
  exercised here with a plain timer workload and a cancel-heavy workload
  shaped like a long regulator suspension (schedule, cancel, reschedule);
* the sign test's precomputed threshold tables, which replace per-sample
  binomial tail walks with two tuple indexings.

Each benchmark reports throughput (events/sec, samples/sec) and *guards
the optimization's correctness*: the pending counter must equal a full
heap scan, and every table entry must equal the threshold functions for
n <= max_samples — the tables must be invisible except for speed.
"""

from __future__ import annotations

import time

from repro.core.signtest import SignTest, good_threshold, poor_threshold
from repro.simos.engine import Engine

#: Deterministic pseudo-random sample stream (LCG; no allocation).
_LCG_A, _LCG_C, _LCG_M = 1103515245, 12345, 2**31


def _run_timer_workload(events: int) -> Engine:
    """Fire a chain of timers, no cancellations."""
    engine = Engine()

    def tick(n):
        if n > 0:
            engine.call_after(1.0, tick, n - 1)

    engine.call_at(0.0, tick, events - 1)
    engine.run()
    return engine

def _run_cancel_workload(rounds: int, burst: int) -> Engine:
    """Schedule-and-cancel churn shaped like regulator suspensions.

    Each round schedules ``burst`` timers, cancels all but one, and lets
    the survivor fire — so cancelled entries continuously dominate fresh
    pushes and the engine's compaction path runs many times.
    """
    engine = Engine()
    for _ in range(rounds):
        handles = [engine.call_after(float(i + 1), lambda: None) for i in range(burst)]
        for handle in handles[1:]:
            handle.cancel()
        engine.step()
    return engine


def run_engine_microbench() -> dict[str, float]:
    events = 30_000
    start = time.perf_counter()
    plain = _run_timer_workload(events)
    plain_wall = time.perf_counter() - start

    rounds, burst = 2_000, 40
    start = time.perf_counter()
    churn = _run_cancel_workload(rounds, burst)
    churn_wall = time.perf_counter() - start
    ops = rounds * burst  # schedules; most are then cancelled

    assert plain.events_fired == events
    assert churn.events_fired == rounds
    # The counter must agree with a full scan after all that churn.
    for engine in (plain, churn):
        assert engine.pending == sum(1 for h in engine._heap if not h.cancelled)
    # Compaction must have kept the heap from retaining the churn.
    assert len(churn._heap) < ops / 4

    return {
        "plain_events_per_sec": events / plain_wall,
        "churn_ops_per_sec": ops / churn_wall,
        "churn_heap_len": float(len(churn._heap)),
    }


def run_signtest_microbench() -> dict[str, float]:
    max_samples = 512  # spans the exact/normal-approximation boundary (256)
    test = SignTest(alpha=0.05, beta=0.2, max_samples=max_samples)

    # Correctness guard: every precomputed verdict threshold must match
    # the threshold functions exactly, for every reachable window size.
    for n in range(max_samples + 1):
        assert test._poor_table[n] == poor_threshold(n, 0.05), n
        assert test._good_table[n] == good_threshold(n, 0.2), n

    samples = 400_000
    state = 12345
    start = time.perf_counter()
    for _ in range(samples):
        state = (_LCG_A * state + _LCG_C) % _LCG_M
        test.add_sample(state < _LCG_M // 2)
    table_wall = time.perf_counter() - start

    # Reference: the unamortized pre-table cost.  Before the tables, the
    # first visit to each window size walked exact binomial tails inside
    # the threshold functions; ``__wrapped__`` bypasses their lru_caches
    # to measure that per-sample cost directly.
    walks = 2_000
    start = time.perf_counter()
    for i in range(walks):
        n = 1 + i % max_samples
        poor_threshold.__wrapped__(n, 0.05)
        good_threshold.__wrapped__(n, 0.2)
    uncached_wall = time.perf_counter() - start

    return {
        "table_samples_per_sec": samples / table_wall,
        "uncached_samples_per_sec": walks / uncached_wall,
        "speedup": (uncached_wall / walks) / (table_wall / samples),
    }


def test_engine_hotpath(benchmark, report):
    engine_stats, sign_stats = benchmark.pedantic(
        lambda: (run_engine_microbench(), run_signtest_microbench()),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Simulator hot paths (single core)",
        "=" * 52,
        f"event engine, timer chain:     {engine_stats['plain_events_per_sec']:>12,.0f} events/s",
        f"event engine, cancel churn:    {engine_stats['churn_ops_per_sec']:>12,.0f} schedules/s"
        f"  (heap held to {engine_stats['churn_heap_len']:.0f} entries by compaction)",
        f"sign test, threshold tables:   {sign_stats['table_samples_per_sec']:>12,.0f} samples/s",
        f"sign test, uncached tails:     {sign_stats['uncached_samples_per_sec']:>12,.0f} samples/s"
        "  (the pre-table first-visit cost per window size)",
        f"table-path speedup:            {sign_stats['speedup']:>12.1f}x",
        "",
        "guards: pending counter == heap scan; table verdicts == threshold",
        "functions for every n <= max_samples (incl. across the exact limit).",
    ]
    report("engine_hotpath", "\n".join(lines))

    # Order-of-magnitude floors, far below any healthy interpreter, so the
    # bench fails only on a real hot-path regression.
    assert engine_stats["plain_events_per_sec"] > 50_000
    assert sign_stats["table_samples_per_sec"] > 200_000
    # The tables must beat walking binomial tails by a wide margin.
    assert sign_stats["speedup"] > 3.0
