"""Micro-benchmarks for the simulator and comparator hot paths.

Two optimizations carry every trial (docs/performance.md):

* the event engine's allocation-free post path (plain-tuple heap entries,
  no per-event objects), its O(1) pending counter, and cancelled-entry
  compaction — exercised via :mod:`repro.analysis.hotpath` with a
  handle-free post chain, a cancellable call chain, and a cancel-heavy
  workload shaped like a long regulator suspension;
* the sign test's precomputed threshold tables, which replace per-sample
  binomial tail walks with two tuple indexings.

Each benchmark reports throughput (events/sec, samples/sec) and *guards
the optimization's correctness*: the pending counter must equal a full
heap scan, and every table entry must equal the threshold functions for
n <= max_samples — the tables must be invisible except for speed.
"""

from __future__ import annotations

import time

from repro.analysis.hotpath import run_engine_hotpath
from repro.core.signtest import SignTest, good_threshold, poor_threshold

#: Deterministic pseudo-random sample stream (LCG; no allocation).
_LCG_A, _LCG_C, _LCG_M = 1103515245, 12345, 2**31


def run_engine_microbench() -> dict[str, float]:
    """The shared event-core workloads (correctness guards included)."""
    return run_engine_hotpath(events=30_000, rounds=2_000, burst=40)


def run_signtest_microbench() -> dict[str, float]:
    max_samples = 512  # spans the exact/normal-approximation boundary (256)
    test = SignTest(alpha=0.05, beta=0.2, max_samples=max_samples)

    # Correctness guard: every precomputed verdict threshold must match
    # the threshold functions exactly, for every reachable window size.
    for n in range(max_samples + 1):
        assert test._poor_table[n] == poor_threshold(n, 0.05), n
        assert test._good_table[n] == good_threshold(n, 0.2), n

    samples = 400_000
    state = 12345
    start = time.perf_counter()
    for _ in range(samples):
        state = (_LCG_A * state + _LCG_C) % _LCG_M
        test.add_sample(state < _LCG_M // 2)
    table_wall = time.perf_counter() - start

    # Reference: the unamortized pre-table cost.  Before the tables, the
    # first visit to each window size walked exact binomial tails inside
    # the threshold functions; ``__wrapped__`` bypasses their lru_caches
    # to measure that per-sample cost directly.
    walks = 2_000
    start = time.perf_counter()
    for i in range(walks):
        n = 1 + i % max_samples
        poor_threshold.__wrapped__(n, 0.05)
        good_threshold.__wrapped__(n, 0.2)
    uncached_wall = time.perf_counter() - start

    return {
        "table_samples_per_sec": samples / table_wall,
        "uncached_samples_per_sec": walks / uncached_wall,
        "speedup": (uncached_wall / walks) / (table_wall / samples),
    }


def test_engine_hotpath(benchmark, report):
    engine_stats, sign_stats = benchmark.pedantic(
        lambda: (run_engine_microbench(), run_signtest_microbench()),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Simulator hot paths (single core)",
        "=" * 52,
        f"event engine, post chain:      {engine_stats['post_events_per_sec']:>12,.0f} events/s"
        "  (allocation-free steady-state path)",
        f"event engine, call chain:      {engine_stats['call_events_per_sec']:>12,.0f} events/s"
        "  (cancellable handles)",
        f"event engine, cancel churn:    {engine_stats['churn_ops_per_sec']:>12,.0f} schedules/s"
        f"  (store held to {engine_stats['stored_churn_entries']:.0f} entries by compaction)",
        f"sign test, threshold tables:   {sign_stats['table_samples_per_sec']:>12,.0f} samples/s",
        f"sign test, uncached tails:     {sign_stats['uncached_samples_per_sec']:>12,.0f} samples/s"
        "  (the pre-table first-visit cost per window size)",
        f"table-path speedup:            {sign_stats['speedup']:>12.1f}x",
        "",
        "guards: pending counter == heap scan; table verdicts == threshold",
        "functions for every n <= max_samples (incl. across the exact limit).",
    ]
    report("engine_hotpath", "\n".join(lines))

    # Order-of-magnitude floors, far below any healthy interpreter, so the
    # bench fails only on a real hot-path regression.  (The CI perf gate
    # does the tight +/-20% comparison against the committed baseline.)
    assert engine_stats["post_events_per_sec"] > 100_000
    assert engine_stats["call_events_per_sec"] > 50_000
    assert sign_stats["table_samples_per_sec"] > 200_000
    # The tables must beat walking binomial tails by a wide margin.
    assert sign_stats["speedup"] > 3.0
