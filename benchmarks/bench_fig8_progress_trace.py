"""Figure 8: the defragmenter's normalized progress rate over time.

Paper (section 9.4): during the periods when the defragmenter is
progressing at or above its target rate, *many individual measurements
still fall below target* — noise that would make a per-sample comparator
"overreactive and highly erratic".  The statistical comparator ignores
below-target measurements when they are balanced by above-target ones.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.tables import format_series
from repro.apps.base import RegulationMode
from repro.experiments.scenarios import defrag_database_trial

from _util import bench_scale, run_bench_trials


def run_figure8():
    [result] = run_bench_trials(
        partial(
            defrag_database_trial,
            RegulationMode.MS_MANNERS,
            scale=bench_scale(),
            with_traces=True,
        ),
        trials=1,
        seed_base=4242,
    )
    return result


def test_fig8_progress_rate(benchmark, report):
    result = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    trace = result.extras["testpoints"]
    hi_start, hi_end = result.extras["hi_window"]
    end = result.li_time if result.li_time else hi_end + 600.0

    # The paper's y-axis: normalized target duration over 2 s windows
    # (> 1 means progressing above the target rate).
    series = trace.normalized_progress(0.0, end, window=2.0)

    # Per-sample noise in the healthy region after the workload completes.
    healthy = [
        r
        for r in trace.records
        if r.when > hi_end + 100.0 and r.target_duration is not None and r.duration > 0
    ]
    below = sum(1 for r in healthy if r.duration > r.target_duration)
    below_fraction = below / len(healthy) if healthy else float("nan")

    lines = [
        format_series(
            "Figure 8: normalized progress (target/measured duration, 2 s windows)",
            series,
            x_label="run time (s)",
            y_label="normalized",
        ),
        "",
        f"healthy-period samples below target: {below_fraction:6.1%} "
        "(paper: 'many of these individual progress rate measurements fall"
        " below the target rate')",
        "A per-sample comparator would suspend on every one of those;"
        " the sign test ignores them while they stay balanced.",
    ]
    report("fig8_progress_trace", "\n".join(lines))

    assert healthy, "expected healthy-period samples after the workload"
    # Substantial per-sample noise exists...
    assert below_fraction > 0.10
    # ...yet the healthy windows aggregate to at-or-above target.
    healthy_windows = [v for t, v in series if t > hi_end + 100.0]
    if healthy_windows:
        median = sorted(healthy_windows)[len(healthy_windows) // 2]
        assert median > 0.85
