"""Figure 10: automatic target calibration against a bursty diurnal load.

Paper (section 9.6): the defragmenter starts with no prior calibration,
during a burst of a sinusoidally modulated bursty disk load, with a 24-hour
probation in a 48-hour run.  The target duration starts ~3.3x too high
(1600 ms vs the ~480 ms ideal), drops to 620 ms by hour 12 and 500 ms by
hour 24, then slowly approaches ideal.  In the second day the defragmenter
is active 19% of the time, and 94% of its execution falls in the dummy
load's idle periods.

The default benchmark compresses the experiment (12 "hours", 6-hour
probation, 6-hour diurnal cycle); set ``REPRO_FULL=1`` for the paper's full
48-hour/24-hour-probation geometry.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.tables import format_series
from repro.experiments.scenarios import calibration_trial

from _util import bench_scale, full_run, run_bench_trials


def run_figure10():
    if full_run():
        hours, probation, diurnal, scale = 48.0, 24.0, 24.0, bench_scale()
    else:
        hours, probation, diurnal, scale = 12.0, 6.0, 6.0, min(bench_scale(), 0.5)
    [result] = run_bench_trials(
        partial(
            calibration_trial,
            hours=hours,
            probation_hours=probation,
            diurnal_hours=diurnal,
            scale=scale,
        ),
        trials=1,
        seed_base=13,
    )
    return result, hours, probation


def test_fig10_target_calibration(benchmark, report):
    result, hours, probation = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    trajectory = [(float(h), v) for h, v in result.target_trajectory]
    activity = [(float(h), f) for h, f in result.activity]

    post_probation_activity = [f for h, f in activity if h >= probation]
    mean_activity = (
        sum(post_probation_activity) / len(post_probation_activity)
        if post_probation_activity
        else float("nan")
    )

    lines = [
        format_series(
            "Figure 10: calibrating target duration (s) per hour",
            trajectory,
            x_label="hour",
            y_label="target (s)",
        ),
        "",
        format_series(
            "Figure 10 (dotted): defragmenter activity per hour",
            activity,
            x_label="hour",
            y_label="duty",
        ),
        "",
        f"initial target duration:   {result.initial_target:8.3f} s",
        f"final target duration:     {result.final_target:8.3f} s",
        f"inflation at start:        {result.initial_target / result.final_target:8.2f}x"
        "  (paper: ~3.3x — 1600 ms vs ~480 ms ideal)",
        f"post-probation activity:   {mean_activity:8.1%}  (paper: 19%)",
        f"execution during idle:     {result.execution_in_idle:8.1%}  (paper: 94%)",
        f"load busy fraction:        {result.schedule_busy_fraction:8.1%}  (paper: ~50%)",
    ]
    report("fig10_calibration", "\n".join(lines))

    assert result.initial_target > 1.2 * result.final_target, "bad start visible"
    values = [v for _, v in trajectory]
    assert values[-1] < values[0], "target converges downward"
    assert result.execution_in_idle > 0.7, "execution concentrates in idle periods"
    probation_activity = [f for h, f in activity if h < probation]
    assert max(probation_activity) < 0.5, "probation caps activity"
