"""Section 2's prior approaches vs MS Manners, quantified.

The paper argues qualitatively why each earlier approach fails in a server
environment with continuously running applications and unpredictable
workloads.  This bench runs them all on the Figure-3 scenario — with the
database server resident for the whole run and two bulk loads arriving at
unpredictable times — and regenerates each claim as a number:

* *scheduled windows* protect the first (lucky) load but are caught by the
  second, and squander all the idle time before the window;
* the *screen-saver* rule sees no user input on a server, declares it
  idle, and lets the defragmenter fight the database;
* *process-queue scanning* starves the defragmenter forever, because the
  database process is always present whether or not it is busy;
* *MS Manners* protects both loads and still finishes the defragmentation
  promptly.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.related import STRATEGIES, related_strategy_trial

from _util import bench_scale, run_bench_trials


def run_related():
    scale = bench_scale()
    return {
        strategy: run_bench_trials(
            partial(related_strategy_trial, strategy, scale=scale),
            trials=1,
            seed_base=42,
        )[0]
        for strategy in STRATEGIES
    }


def test_related_approaches(benchmark, report):
    results = benchmark.pedantic(run_related, rounds=1, iterations=1)
    baseline = min(r.hi_time for r in results.values() if r.hi_time)

    lines = [
        "Section 2: prior approaches vs MS Manners (Figure-3 scenario,",
        "resident DB server + two unpredictable bulk loads)",
        "=" * 72,
        f"{'strategy':<14} {'load #1':>9} {'load #2':>9} {'defrag done':>12}",
    ]
    for name, r in results.items():
        hi2 = r.extras["hi2_time"]
        li = f"{r.li_time:10.1f}s" if r.li_finished else "     never"
        lines.append(
            f"{name:<14} {r.hi_time:>8.1f}s {hi2:>8.1f}s {li:>12}"
        )
    lines += [
        "",
        "paper section 2, regenerated:",
        "  scheduled:   misses unanticipated activity and wastes idle time",
        "  screensaver: 'not valid for a server, which is often busy but",
        "               rarely receives direct user input'",
        "  queue-scan:  'would never allow a low-importance process to run'",
        "  MS Manners:  regulates both loads, defragmentation completes",
    ]
    report("related_approaches", "\n".join(lines))

    unreg = results["unregulated"]
    sched = results["scheduled"]
    saver = results["screensaver"]
    queue = results["queue-scan"]
    manners = results["ms-manners"]

    assert unreg.hi_time > 1.5 * baseline
    # Scheduled: first load fine, second load (inside the window) degraded,
    # and the defragmenter finishes far later than under MS Manners.
    assert sched.hi_time < 1.2 * baseline
    assert sched.extras["hi2_time"] > 1.5 * baseline
    assert sched.li_time > 2.0 * manners.li_time
    # Screen saver: behaves like (most of) an unregulated run on a server.
    assert saver.hi_time > 1.5 * baseline
    # Queue scan: perfect protection, total starvation.
    assert queue.hi_time < 1.2 * baseline
    assert not queue.li_finished
    # MS Manners: both loads near baseline, defragmentation completes.
    assert manners.hi_time < 1.25 * baseline
    assert manners.extras["hi2_time"] < 1.25 * baseline
    assert manners.li_finished
