"""Telemetry overhead on the Figure 6 contended-defrag scenario.

The observability contract (docs/observability.md): with
``telemetry=None`` the instrumentation must reduce to one branch per
emit site — no clock reads, no event allocation.  This benchmark runs
the fig6 defrag-vs-database trial three ways:

* ``baseline`` — ``telemetry=None`` (the disabled path, default everywhere);
* ``null``     — a live handle on ``NullSink`` (metrics on, events off);
* ``jsonl``    — full event capture to a JSONL trace file.

The scenario is deterministic per seed, so interpreter work is measured
exactly: total function/builtin calls under ``cProfile`` are identical
run to run, immune to the wall-clock noise of shared CI machines.  The
contract assertion — overhead < 2% — is made on that deterministic
count for the null-sink configuration; the disabled path executes a
strict subset of the null-sink path's work (the ``is None`` branch
alone), so its overhead over uninstrumented code is bounded well below
that.  Wall CPU times are reported alongside for scale.
"""

from __future__ import annotations

import cProfile
import pstats
import time

from repro.apps.base import RegulationMode
from repro.experiments.scenarios import defrag_database_trial
from repro.obs import JsonlSink, MetricsRegistry, NullSink, Telemetry

from _util import bench_scale

#: The scenario is deterministic per seed; identical work in every run.
SEED = 4242


def _run_trial(telemetry: Telemetry | None, scale: float) -> None:
    result = defrag_database_trial(
        RegulationMode.MS_MANNERS, seed=SEED, scale=scale, telemetry=telemetry
    )
    assert result.li_time is not None


def _measure(make_telemetry, scale: float) -> tuple[int, float]:
    """(exact interpreter call count, CPU seconds) for one trial."""
    profile = cProfile.Profile()
    start = time.process_time()
    profile.enable()
    _run_trial(make_telemetry(), scale)
    profile.disable()
    elapsed = time.process_time() - start
    return pstats.Stats(profile).total_calls, elapsed


def run_overhead(trace_path) -> dict[str, object]:
    scale = bench_scale(0.3)
    _run_trial(None, scale)  # warm caches so call counts are steady-state

    def make_jsonl():
        return Telemetry(sink=JsonlSink(trace_path), metrics=MetricsRegistry())

    base_calls, base_cpu = _measure(lambda: None, scale)
    null_calls, null_cpu = _measure(
        lambda: Telemetry(sink=NullSink(), metrics=MetricsRegistry()), scale
    )
    jsonl_calls, jsonl_cpu = _measure(make_jsonl, scale)
    events = sum(1 for line in open(trace_path, encoding="utf-8") if line.strip())
    return {
        "scale": scale,
        "events": events,
        "calls": {"baseline": base_calls, "null": null_calls, "jsonl": jsonl_calls},
        "cpu": {"baseline": base_cpu, "null": null_cpu, "jsonl": jsonl_cpu},
    }


def test_obs_overhead_disabled_under_2pct(benchmark, report, tmp_path):
    data = benchmark.pedantic(
        run_overhead, args=(tmp_path / "trace.jsonl",), rounds=1, iterations=1
    )
    calls, cpu = data["calls"], data["cpu"]
    null_overhead = calls["null"] / calls["baseline"] - 1.0
    jsonl_overhead = calls["jsonl"] / calls["baseline"] - 1.0

    lines = [
        "Telemetry overhead on the fig6 contended-defrag run "
        f"(scale {data['scale']}, exact call counts under cProfile)",
        "",
        f"telemetry=None (baseline):  {calls['baseline']:>10} calls  "
        f"{cpu['baseline']:7.3f} s CPU",
        f"Telemetry + NullSink:       {calls['null']:>10} calls  "
        f"{cpu['null']:7.3f} s CPU  ({null_overhead:+6.3%} calls)",
        f"Telemetry + JsonlSink:      {calls['jsonl']:>10} calls  "
        f"{cpu['jsonl']:7.3f} s CPU  ({jsonl_overhead:+6.3%} calls, "
        f"{data['events']} events)",
        "",
        "contract: telemetry overhead (null sink vs disabled) < 2%",
    ]
    report("obs_overhead", "\n".join(lines))

    assert data["events"] > 0, "the instrumented run must actually emit events"
    assert null_overhead < 0.02, (
        f"null-sink telemetry does {null_overhead:.2%} extra interpreter work "
        "(contract: < 2%); an emit site is likely doing heavy work per event"
    )
