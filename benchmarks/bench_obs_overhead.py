"""Telemetry overhead on the Figure 6 contended-defrag scenario.

The observability contract (docs/observability.md): with
``telemetry=None`` the instrumentation must reduce to one branch per
emit site — no clock reads, no event allocation.  This benchmark runs
the fig6 defrag-vs-database trial four ways:

* ``baseline`` — ``telemetry=None`` (the disabled path, default everywhere);
* ``null``     — a live handle on ``NullSink`` (metrics on, events off);
* ``traced``   — in-memory event capture with causal span tracing on
  (the ``repro obs explain`` configuration, at its default sampling of
  one span per pipeline step);
* ``jsonl``    — full event capture to a JSONL trace file.

The scenario is deterministic per seed, so interpreter work is measured
exactly: total function/builtin calls under ``cProfile`` are identical
run to run, immune to the wall-clock noise of shared CI machines.  The
contract assertions — overhead < 2% telemetry-disabled, < 5% with
tracing enabled — are made on those deterministic counts (the disabled
path executes a strict subset of the null-sink path's work, so gating
the null sink bounds it from above).  Wall CPU times are reported
alongside for scale.

Runs two ways:

* under pytest (``pytest benchmarks/bench_obs_overhead.py``), asserting
  the caps inline;
* as a script (``python benchmarks/bench_obs_overhead.py --out DIR``),
  writing ``BENCH_obs_overhead.json`` for the CI perf gate
  (``benchmarks/compare_baseline.py`` enforces the same caps as hard
  ceilings, independent of baseline drift).
"""

from __future__ import annotations

import cProfile
import pstats
import time

from repro.apps.base import RegulationMode
from repro.experiments.scenarios import defrag_database_trial
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    Telemetry,
    Tracer,
)

from _util import bench_scale

#: The scenario is deterministic per seed; identical work in every run.
SEED = 4242

#: Hard ceilings on telemetry overhead, in fractional extra interpreter
#: calls vs the disabled path.  Mirrored by ``repro.analysis.bench
#: .OVERHEAD_CAPS`` so the CI perf gate enforces the same numbers.
NULL_OVERHEAD_CAP = 0.02
TRACED_OVERHEAD_CAP = 0.05


def _run_trial(telemetry: Telemetry | None, scale: float) -> None:
    result = defrag_database_trial(
        RegulationMode.MS_MANNERS, seed=SEED, scale=scale, telemetry=telemetry
    )
    assert result.li_time is not None


def _measure(make_telemetry, scale: float) -> tuple[int, float]:
    """(exact interpreter call count, CPU seconds) for one trial."""
    profile = cProfile.Profile()
    start = time.process_time()
    profile.enable()
    _run_trial(make_telemetry(), scale)
    profile.disable()
    elapsed = time.process_time() - start
    return pstats.Stats(profile).total_calls, elapsed


def run_overhead(trace_path) -> dict[str, object]:
    scale = bench_scale(0.3)
    _run_trial(None, scale)  # warm caches so call counts are steady-state

    def make_jsonl():
        return Telemetry(sink=JsonlSink(trace_path), metrics=MetricsRegistry())

    traced_sink = MemorySink()

    def make_traced():
        return Telemetry(
            sink=traced_sink, metrics=MetricsRegistry(), tracer=Tracer()
        )

    base_calls, base_cpu = _measure(lambda: None, scale)
    null_calls, null_cpu = _measure(
        lambda: Telemetry(sink=NullSink(), metrics=MetricsRegistry()), scale
    )
    traced_calls, traced_cpu = _measure(make_traced, scale)
    jsonl_calls, jsonl_cpu = _measure(make_jsonl, scale)
    events = sum(1 for line in open(trace_path, encoding="utf-8") if line.strip())
    from repro.obs.trace2 import spans_of

    return {
        "scale": scale,
        "events": events,
        "spans": len(spans_of(traced_sink.events)),
        "calls": {
            "baseline": base_calls,
            "null": null_calls,
            "traced": traced_calls,
            "jsonl": jsonl_calls,
        },
        "cpu": {
            "baseline": base_cpu,
            "null": null_cpu,
            "traced": traced_cpu,
            "jsonl": jsonl_cpu,
        },
    }


def build_report(data: dict) -> tuple[dict, list[str]]:
    """(BENCH_obs_overhead.json payload, report text lines) for one run."""
    calls, cpu = data["calls"], data["cpu"]
    null_overhead = calls["null"] / calls["baseline"] - 1.0
    traced_overhead = calls["traced"] / calls["baseline"] - 1.0
    jsonl_overhead = calls["jsonl"] / calls["baseline"] - 1.0
    report = {
        "name": "obs_overhead",
        "kind": "overhead",
        "scale": data["scale"],
        "events": data["events"],
        "spans": data["spans"],
        "calls": calls,
        "null_overhead": round(null_overhead, 5),
        "traced_overhead": round(traced_overhead, 5),
        "jsonl_overhead": round(jsonl_overhead, 5),
        "caps": {
            "null_overhead": NULL_OVERHEAD_CAP,
            "traced_overhead": TRACED_OVERHEAD_CAP,
        },
    }
    lines = [
        "Telemetry overhead on the fig6 contended-defrag run "
        f"(scale {data['scale']}, exact call counts under cProfile)",
        "",
        f"telemetry=None (baseline):  {calls['baseline']:>10} calls  "
        f"{cpu['baseline']:7.3f} s CPU",
        f"Telemetry + NullSink:       {calls['null']:>10} calls  "
        f"{cpu['null']:7.3f} s CPU  ({null_overhead:+6.3%} calls)",
        f"Telemetry + spans (traced): {calls['traced']:>10} calls  "
        f"{cpu['traced']:7.3f} s CPU  ({traced_overhead:+6.3%} calls, "
        f"{data['spans']} spans)",
        f"Telemetry + JsonlSink:      {calls['jsonl']:>10} calls  "
        f"{cpu['jsonl']:7.3f} s CPU  ({jsonl_overhead:+6.3%} calls, "
        f"{data['events']} events)",
        "",
        f"contract: disabled-path overhead (null sink) < {NULL_OVERHEAD_CAP:.0%}; "
        f"tracing-enabled overhead < {TRACED_OVERHEAD_CAP:.0%}",
    ]
    return report, lines


def test_obs_overhead_gate(benchmark, report, tmp_path):
    data = benchmark.pedantic(
        run_overhead, args=(tmp_path / "trace.jsonl",), rounds=1, iterations=1
    )
    payload, lines = build_report(data)
    report("obs_overhead", "\n".join(lines))

    assert data["events"] > 0, "the instrumented run must actually emit events"
    assert data["spans"] > 0, "the traced run must actually emit spans"
    assert payload["null_overhead"] < NULL_OVERHEAD_CAP, (
        f"null-sink telemetry does {payload['null_overhead']:.2%} extra "
        f"interpreter work (contract: < {NULL_OVERHEAD_CAP:.0%}); an emit "
        "site is likely doing heavy work per event"
    )
    assert payload["traced_overhead"] < TRACED_OVERHEAD_CAP, (
        f"span tracing does {payload['traced_overhead']:.2%} extra "
        f"interpreter work (contract: < {TRACED_OVERHEAD_CAP:.0%}); a span "
        "emission site is likely allocating outside the gated path"
    )


if __name__ == "__main__":
    import argparse
    import json
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="benchmarks/results",
        help="directory for BENCH_obs_overhead.json",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory() as tmp:
        data = run_overhead(Path(tmp) / "trace.jsonl")
    payload, lines = build_report(data)
    print("\n".join(lines))
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_obs_overhead.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nreport -> {path}")
    failed = []
    if payload["null_overhead"] >= NULL_OVERHEAD_CAP:
        failed.append(
            f"null_overhead {payload['null_overhead']:.3%} >= "
            f"{NULL_OVERHEAD_CAP:.0%}"
        )
    if payload["traced_overhead"] >= TRACED_OVERHEAD_CAP:
        failed.append(
            f"traced_overhead {payload['traced_overhead']:.3%} >= "
            f"{TRACED_OVERHEAD_CAP:.0%}"
        )
    for line in failed:
        print(f"OVERHEAD GATE FAILED: {line}")
    raise SystemExit(1 if failed else 0)
