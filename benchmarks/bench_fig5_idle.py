"""Figure 5: defragmenter run time on an otherwise-idle system.

Paper (section 9.3): 410 s median whether unregulated, at low CPU
priority, or under MS Manners — regulation costs nothing when there is no
contention.  Under BeNice, the per-poll suspend/resume of the process's
threads adds ~1.5%.
"""

from __future__ import annotations

from repro.analysis.runner import aggregate
from repro.analysis.tables import format_box_table
from repro.apps.base import RegulationMode

from _util import spec_samples

MODES = (
    RegulationMode.UNREGULATED,
    RegulationMode.CPU_PRIORITY,
    RegulationMode.MS_MANNERS,
    RegulationMode.BENICE,
)


def run_figure5() -> dict[str, list[float]]:
    """Thin reference to the registered ``fig5_idle`` experiment spec."""
    samples = spec_samples("fig5_idle", "li_time")
    assert all(t is not None for times in samples.values() for t in times)
    return samples


def test_fig5_defrag_time_uncontended(benchmark, report):
    samples = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    stats = aggregate(samples)
    base = stats[RegulationMode.UNREGULATED.value].median
    lines = [
        format_box_table(
            "Figure 5: defragment time when not contended (s)",
            stats,
            baseline=RegulationMode.UNREGULATED.value,
        ),
        "",
        f"paper: all ~410 s (1.00x), BeNice ~1.015x;",
        f"measured BeNice overhead: "
        f"{stats[RegulationMode.BENICE.value].median / base - 1.0:+.1%}",
        f"measured MS Manners overhead: "
        f"{stats[RegulationMode.MS_MANNERS.value].median / base - 1.0:+.1%}",
    ]
    report("fig5_idle", "\n".join(lines))

    manners = stats[RegulationMode.MS_MANNERS.value].median
    cpu = stats[RegulationMode.CPU_PRIORITY.value].median
    benice = stats[RegulationMode.BENICE.value].median
    assert abs(cpu - base) / base < 0.05, "CPU priority free when idle"
    assert abs(manners - base) / base < 0.08, "MS Manners ~free when idle"
    assert 0.0 <= (benice - base) / base < 0.10, "BeNice adds small poll overhead"
