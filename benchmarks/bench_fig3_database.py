"""Figure 3: database workload run time under five defragmenter regimes.

Paper (section 9.2): SQL Server's TPC-C-style load takes a median 300 s
alone; an unregulated concurrent defragmenter adds ~90%; lowering the
defragmenter's CPU priority makes no appreciable difference; running it
under MS Manners (library) or BeNice leaves the database only ~7% slower —
an order-of-magnitude reduction in degradation.
"""

from __future__ import annotations

from repro.analysis.runner import aggregate
from repro.analysis.tables import format_box_table
from repro.apps.base import RegulationMode

from _util import spec_samples

MODES = (
    RegulationMode.NOT_RUNNING,
    RegulationMode.UNREGULATED,
    RegulationMode.CPU_PRIORITY,
    RegulationMode.MS_MANNERS,
    RegulationMode.BENICE,
)

PAPER_RELATIVE = {
    RegulationMode.NOT_RUNNING: 1.0,
    RegulationMode.UNREGULATED: 1.9,
    RegulationMode.CPU_PRIORITY: 1.9,
    RegulationMode.MS_MANNERS: 1.07,
    RegulationMode.BENICE: 1.07,
}


def run_figure3() -> dict[str, list[float]]:
    """All trials for every configuration; returns hi-times per mode.

    A thin reference to the registered ``fig3_database``
    :class:`~repro.experiments.spec.ExperimentSpec`: trials fan out over
    ``REPRO_JOBS`` worker processes and completed (mode, seed, scale)
    trials are served from the trial cache, exactly as the hand-rolled
    sweep did (same seeds, same cache namespaces, same samples).
    """
    samples = spec_samples("fig3_database", "hi_time")
    assert all(t is not None for times in samples.values() for t in times)
    return samples


def test_fig3_database_run_time(benchmark, report):
    samples = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    stats = aggregate(samples)
    lines = [
        format_box_table(
            "Figure 3: database workload run time (s)",
            stats,
            baseline=RegulationMode.NOT_RUNNING.value,
        ),
        "",
        "paper-relative medians (vs not running):",
    ]
    base = stats[RegulationMode.NOT_RUNNING.value].median
    for mode in MODES:
        measured = stats[mode.value].median / base
        lines.append(
            f"  {mode.value:<14} measured {measured:5.2f}x   paper ~{PAPER_RELATIVE[mode]:4.2f}x"
        )
    report("fig3_database", "\n".join(lines))

    # Shape assertions: the figure's qualitative claims must hold.
    unreg = stats[RegulationMode.UNREGULATED.value].median
    cpu = stats[RegulationMode.CPU_PRIORITY.value].median
    manners = stats[RegulationMode.MS_MANNERS.value].median
    benice = stats[RegulationMode.BENICE.value].median
    assert unreg > 1.4 * base, "unregulated contention must badly degrade the DB"
    assert abs(cpu - unreg) / unreg < 0.1, "CPU priority must not help"
    assert manners < 1.25 * base, "MS Manners must restore near-baseline"
    assert benice < 1.3 * base, "BeNice must restore near-baseline"
    assert (manners - base) < (unreg - base) / 3.0, "degradation cut by factors"
