"""Figure 4: Office 97 Setup time under four SIS Groveler regimes.

Paper (section 9.2): the installation takes a median 250 s alone; an
unregulated concurrent Groveler adds ~90%; CPU priority makes no
appreciable difference; under MS Manners the installation is only ~12%
slower.  The paper ran this one only 5 times (it was not automated).
"""

from __future__ import annotations

from repro.analysis.runner import aggregate
from repro.analysis.tables import format_box_table
from repro.apps.base import RegulationMode

from _util import spec_samples

MODES = (
    RegulationMode.NOT_RUNNING,
    RegulationMode.UNREGULATED,
    RegulationMode.CPU_PRIORITY,
    RegulationMode.MS_MANNERS,
)

PAPER_RELATIVE = {
    RegulationMode.NOT_RUNNING: 1.0,
    RegulationMode.UNREGULATED: 1.9,
    RegulationMode.CPU_PRIORITY: 1.9,
    RegulationMode.MS_MANNERS: 1.12,
}


def run_figure4() -> dict[str, list[float]]:
    """All trials for every configuration; returns hi-times per mode.

    A thin reference to the registered ``fig4_setup``
    :class:`~repro.experiments.spec.ExperimentSpec`: same scenario, same
    modes, same ``seed_base=2000`` seeds and ``groveler_setup:<mode>``
    cache namespaces as the hand-rolled sweep it replaced, so samples
    are bit-identical to the pre-port output.
    """
    samples = spec_samples("fig4_setup", "hi_time")
    assert all(t is not None for times in samples.values() for t in times)
    return samples


def test_fig4_setup_time(benchmark, report):
    samples = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    stats = aggregate(samples)
    lines = [
        format_box_table(
            "Figure 4: Office-style Setup time (s)",
            stats,
            baseline=RegulationMode.NOT_RUNNING.value,
        ),
        "",
        "paper-relative medians (vs not running):",
    ]
    base = stats[RegulationMode.NOT_RUNNING.value].median
    for mode in MODES:
        measured = stats[mode.value].median / base
        lines.append(
            f"  {mode.value:<14} measured {measured:5.2f}x   paper ~{PAPER_RELATIVE[mode]:4.2f}x"
        )
    report("fig4_setup", "\n".join(lines))

    unreg = stats[RegulationMode.UNREGULATED.value].median
    cpu = stats[RegulationMode.CPU_PRIORITY.value].median
    manners = stats[RegulationMode.MS_MANNERS.value].median
    assert unreg > 1.2 * base, "unregulated Groveler must slow Setup"
    assert abs(cpu - unreg) / unreg < 0.1, "CPU priority must not help"
    assert manners < 1.15 * base, "MS Manners must restore near-baseline"
    assert (manners - base) < (unreg - base) / 3.0
