"""Figure 6: defragmenter run time with the database workload.

Paper (section 9.3): the uncontended database load runs 300 s, so perfect
resource sharing would add 300 s to the defragmenter's 410 s.  The actual
unregulated increase is ~460 s (50% worse — the inefficiency of
contention); under MS Manners the increase is ~550 s (80% worse — the
defragmenter also pays suspension overshoot while deferring).
"""

from __future__ import annotations

from repro.analysis.runner import aggregate
from repro.analysis.tables import format_box_table
from repro.apps.base import RegulationMode

from _util import spec_samples

MODES = (
    RegulationMode.UNREGULATED,
    RegulationMode.CPU_PRIORITY,
    RegulationMode.MS_MANNERS,
    RegulationMode.BENICE,
)


def run_figure6() -> dict[str, object]:
    """Thin reference to the three registered Figure 6 experiment specs.

    The measured arms come from ``fig6_contended``; the uncontended
    baselines for the sharing arithmetic from ``fig6_defrag_alone`` and
    ``fig6_database_alone`` (the latter runs at half the trial budget via
    the spec's ``trials_factor``, as the hand-rolled bench did).
    """
    contended = spec_samples("fig6_contended", "li_time")
    idle = spec_samples("fig6_defrag_alone", "li_time")[
        RegulationMode.UNREGULATED.value
    ]
    db_alone = spec_samples("fig6_database_alone", "hi_time")[
        RegulationMode.NOT_RUNNING.value
    ]
    return {"contended": contended, "idle": idle, "db_alone": db_alone}


def test_fig6_defrag_time_contended(benchmark, report):
    data = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    stats = aggregate(data["contended"])
    idle_median = sorted(data["idle"])[len(data["idle"]) // 2]
    db_median = sorted(data["db_alone"])[len(data["db_alone"]) // 2]

    unreg = stats[RegulationMode.UNREGULATED.value].median
    manners = stats[RegulationMode.MS_MANNERS.value].median
    unreg_increase = unreg - idle_median
    manners_increase = manners - idle_median

    lines = [
        format_box_table(
            "Figure 6: defragment time with database workload (s)",
            stats,
            baseline=RegulationMode.UNREGULATED.value,
        ),
        "",
        f"defrag alone (median):              {idle_median:8.1f} s",
        f"database alone (median):            {db_median:8.1f} s",
        f"unregulated increase over alone:    {unreg_increase:8.1f} s "
        f"({unreg_increase / db_median:4.2f}x the DB load; paper ~1.5x)",
        f"MS Manners increase over alone:     {manners_increase:8.1f} s "
        f"({manners_increase / db_median:4.2f}x the DB load; paper ~1.8x)",
    ]
    report("fig6_defrag_contended", "\n".join(lines))

    # Shape: contention is worse than perfect sharing, and regulation costs
    # the LI process at least as much as unregulated contention does.
    assert unreg_increase > db_median, "contention must be worse than sharing"
    assert manners_increase > 0.8 * unreg_increase
