"""Section 6.1's analytic model: Eqs. (1)-(3) against Monte Carlo.

The paper predicts, for alpha = 0.05 and beta = 0.2 at a few-hundred-
millisecond testpoint cadence: a minimum of 5 samples to recognize poor
progress (a few seconds' reaction time), a ~1% steady-state performance
hit on a well-progressing low-importance process, and instability unless
alpha < beta.  This bench regenerates those numbers, cross-checks the
closed forms against a simulation of the judgment chain, and sweeps the
alpha/beta trade-off the paper describes (responsiveness vs efficacy vs
efficiency).
"""

from __future__ import annotations

import random

from repro.core.queueing import (
    expected_backoff_factor,
    is_stable,
    reaction_time,
    simulate_judgment_chain,
    steady_state_distribution,
    suspended_fraction,
)
from repro.core.signtest import min_poor_samples


def run_analytics():
    rows = []
    for alpha, beta in [(0.01, 0.2), (0.05, 0.2), (0.05, 0.4), (0.1, 0.2), (0.1, 0.11)]:
        mc = simulate_judgment_chain(
            alpha, beta, judgments=40_000, rng=random.Random(hash((alpha, beta)) & 0xFFFF)
        )
        rows.append(
            {
                "alpha": alpha,
                "beta": beta,
                "m": min_poor_samples(alpha),
                "reaction_s": reaction_time(alpha, 0.3),
                "eq3": suspended_fraction(alpha, beta),
                "mc": mc.suspended_fraction,
                "backoff": expected_backoff_factor(alpha, beta),
                "stable": is_stable(alpha, beta),
            }
        )
    return rows


def test_analytic_model(benchmark, report):
    rows = benchmark.pedantic(run_analytics, rounds=1, iterations=1)
    lines = [
        "Section 6.1: suspension model — closed forms vs Monte Carlo",
        "=" * 76,
        f"{'alpha':>6} {'beta':>6} {'m':>3} {'react(s)':>9} "
        f"{'Eq3 susp':>9} {'MC susp':>9} {'E[2^k]':>8} {'stable':>7}",
    ]
    for r in rows:
        lines.append(
            f"{r['alpha']:>6} {r['beta']:>6} {r['m']:>3} {r['reaction_s']:>9.2f} "
            f"{r['eq3']:>9.4f} {r['mc']:>9.4f} {r['backoff']:>8.3f} {str(r['stable']):>7}"
        )
    paper_row = next(r for r in rows if r["alpha"] == 0.05 and r["beta"] == 0.2)
    lines += [
        "",
        "paper's operating point (alpha=0.05, beta=0.2):",
        f"  m = {paper_row['m']} samples (paper: 5);"
        f" reaction = {paper_row['reaction_s']:.1f} s (paper: 'a few seconds');",
        f"  steady-state suspension = {paper_row['eq3']:.1%}"
        " (paper: ~1% degradation of the LI process).",
        "Eq. (2) steady-state distribution p_k (k = 0..4): "
        + ", ".join(f"{p:.4f}" for p in steady_state_distribution(0.05, 0.2, 4)),
    ]
    report("analytic_model", "\n".join(lines))

    # The paper's operating point.
    assert paper_row["m"] == 5
    assert 1.0 <= paper_row["reaction_s"] <= 3.0
    assert 0.005 <= paper_row["eq3"] <= 0.02
    # Theory and Monte Carlo agree for comfortably stable configurations.
    # (Near the alpha ~ beta stability boundary the suspended time is
    # dominated by rare, enormous 2^k terms, so any finite Monte Carlo run
    # underestimates the expectation — itself an illustration of why the
    # paper requires alpha < beta with margin.)
    for r in rows:
        if r["stable"] and r["backoff"] <= 3.0:
            assert abs(r["mc"] - r["eq3"]) <= max(0.2 * r["eq3"], 0.003)
    # The trade-offs of section 6.1.
    base = next(r for r in rows if (r["alpha"], r["beta"]) == (0.05, 0.2))
    hi_beta = next(r for r in rows if (r["alpha"], r["beta"]) == (0.05, 0.4))
    assert hi_beta["eq3"] < base["eq3"], "raising beta improves efficiency"
    lo_alpha = next(r for r in rows if (r["alpha"], r["beta"]) == (0.01, 0.2))
    assert lo_alpha["m"] > base["m"], "lowering alpha slows reaction"
    marginal = next(r for r in rows if (r["alpha"], r["beta"]) == (0.1, 0.11))
    assert marginal["backoff"] > base["backoff"], "alpha near beta degrades stability"
