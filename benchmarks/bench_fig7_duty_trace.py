"""Figure 7: the defragmenter's execution duty during the database load.

Paper (section 9.4): the defragmenter runs freely until the database
workload starts at t = 30 s, then MS Manners suspends it for exponentially
increasing intervals; an execution probe just before the workload completes
leaves it suspended ~220 s longer than necessary (suspension overshoot);
afterwards it runs freely again.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.tables import format_series
from repro.apps.base import RegulationMode
from repro.experiments.scenarios import defrag_database_trial

from _util import bench_scale, run_bench_trials


def run_figure7():
    # One traced trial through the shared runner (trace objects are not
    # JSON-safe, so this path is never cached).
    [result] = run_bench_trials(
        partial(
            defrag_database_trial,
            RegulationMode.MS_MANNERS,
            scale=bench_scale(),
            with_traces=True,
        ),
        trials=1,
        seed_base=4242,
    )
    return result


def test_fig7_defragmenter_duty(benchmark, report):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    duty = result.extras["duty"]
    thread = result.extras["defrag_thread"]
    hi_start, hi_end = result.extras["hi_window"]
    end = result.li_time if result.li_time else hi_end + 600.0
    series = duty.binned(thread, 0.0, end, 10.0)

    before = duty.duty_fraction(thread, 0.0, hi_start)
    during = duty.duty_fraction(thread, hi_start + 30.0, hi_end)
    after_window = min(hi_end + 300.0, end)
    after = duty.duty_fraction(thread, hi_end, after_window) if after_window > hi_end else 1.0

    # Suspension overshoot: executing resumes only some time after the
    # database completes (the last backoff interval runs out).
    resume_at = None
    for t, fraction in series:
        if t >= hi_end and fraction > 0.5:
            resume_at = t
            break
    overshoot = (resume_at - hi_end) if resume_at is not None else float("nan")

    lines = [
        format_series(
            "Figure 7: defragmenter duty (fraction executing per 10 s bin)",
            series,
            x_label="run time (s)",
            y_label="duty",
        ),
        "",
        f"database workload window:      {hi_start:7.1f} .. {hi_end:7.1f} s",
        f"duty before workload:          {before:7.2f}   (paper: ~1.0)",
        f"duty during workload:          {during:7.2f}   (paper: ~0, probes only)",
        f"duty after workload:           {after:7.2f}   (paper: ~1.0 after overshoot)",
        f"suspension overshoot:          {overshoot:7.1f} s (paper: ~220 s worst case,"
        " bounded by the 256 s suspension cap)",
    ]
    report("fig7_duty_trace", "\n".join(lines))

    assert before > 0.9, "defragmenter should run freely before the workload"
    assert during < 0.35, "defragmenter must defer during the workload"
    assert overshoot <= 260.0, "overshoot is bounded by the suspension cap"
