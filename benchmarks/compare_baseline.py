"""CI perf gate: compare fresh BENCH_*.json reports against the baseline.

Usage (what the perf-smoke job runs):

    python benchmarks/compare_baseline.py \
        --baseline benchmarks/results --fresh fresh-results \
        engine_hotpath defrag_idle defrag_database

For every named benchmark, loads ``BENCH_<name>.json`` from both
directories and fails (exit 1) if events/sec dropped — or wall time rose,
when the runs did identical work — more than the tolerance below the
committed baseline.  Improvements never fail; re-commit the baseline files
to ratchet them in.  ``REPRO_BENCH_TOLERANCE`` overrides the default
fractional tolerance of 0.20 (use a looser value on noisy shared runners).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.bench import compare_reports, load_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="+", help="benchmark names to compare")
    parser.add_argument(
        "--baseline", default="benchmarks/results",
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--fresh", required=True,
        help="directory holding this run's BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.20")),
        help="allowed fractional drift in the bad direction (default 0.20)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    for name in args.names:
        baseline = load_report(name, args.baseline)
        fresh = load_report(name, args.fresh)
        problems = compare_reports(baseline, fresh, tolerance=args.tolerance)
        if problems:
            failures.extend(problems)
            continue
        base_eps = baseline.get("events_per_sec")
        fresh_eps = fresh.get("events_per_sec")
        if base_eps and fresh_eps:
            print(
                f"ok {name}: {fresh_eps:,} events/s vs baseline "
                f"{base_eps:,} ({fresh_eps / base_eps - 1.0:+.1%})"
            )
        else:
            print(f"ok {name}")
    for line in failures:
        print(f"REGRESSION {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
