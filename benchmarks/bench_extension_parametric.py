"""Extension (paper section 11): parametric SPRT vs the sign test.

"A parametric test could be more responsive, but it would require
modeling the progress rate distribution..."  This bench quantifies the
trade-off the paper hypothesizes: reaction samples to various degrees of
degradation, and inappropriate-judgment behaviour on noisy-but-healthy
progress, for the non-parametric sign test versus a Gaussian SPRT on log
duration ratios.
"""

from __future__ import annotations

import random

from repro.core.comparator import StatisticalComparator
from repro.core.parametric import ParametricComparator
from repro.core.signtest import Judgment


def _reaction_samples(comp, ratio, seed, trials=200, cap=100):
    rng = random.Random(seed)
    total = 0
    for _ in range(trials):
        comp.reset()
        for i in range(1, cap + 1):
            sample = ratio * rng.lognormvariate(0.0, 0.15)
            if comp.observe(sample, 1.0) is Judgment.POOR:
                total += i
                break
        else:
            total += cap
    return total / trials


#: Healthy operating point: the median-quantile calibration correction
#: (repro.core.calibration.MedianScale) keeps ~1/3 of honest samples below
#: target, i.e. the log-ratio median sits at -z(2/3) * sigma.
_HEALTHY_MU = -0.4307 * 0.25
_HEALTHY_SIGMA = 0.25


def _false_poor_rate(comp, seed, samples=30_000):
    rng = random.Random(seed)
    poor = judged = 0
    for _ in range(samples):
        ratio = rng.lognormvariate(_HEALTHY_MU, _HEALTHY_SIGMA)
        verdict = comp.observe(ratio, 1.0)
        if verdict is not Judgment.INDETERMINATE:
            judged += 1
            if verdict is Judgment.POOR:
                poor += 1
    return poor / max(judged, 1)


def run_comparison():
    ratios = (1.5, 2.0, 3.0, 5.0)
    rows = []
    for ratio in ratios:
        sign = StatisticalComparator(alpha=0.05, beta=0.2)
        sprt = ParametricComparator(alpha=0.05, beta=0.2)
        rows.append(
            {
                "ratio": ratio,
                "sign": _reaction_samples(sign, ratio, seed=int(ratio * 100)),
                "sprt": _reaction_samples(sprt, ratio, seed=int(ratio * 100)),
            }
        )
    fp = {
        "sign": _false_poor_rate(StatisticalComparator(alpha=0.05, beta=0.2), seed=1),
        "sprt": _false_poor_rate(ParametricComparator(alpha=0.05, beta=0.2), seed=1),
    }
    return rows, fp


def test_extension_parametric_comparator(benchmark, report):
    rows, fp = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = [
        "Section 11 extension: sign test vs parametric SPRT",
        "=" * 60,
        f"{'degradation':>12} {'sign test (samples)':>20} {'SPRT (samples)':>16}",
    ]
    for r in rows:
        lines.append(f"{r['ratio']:>11.1f}x {r['sign']:>20.1f} {r['sprt']:>16.1f}")
    lines += [
        "",
        f"false-poor fraction of judgments on noisy healthy progress:",
        f"  sign test: {fp['sign']:6.2%}    SPRT: {fp['sprt']:6.2%}",
        "",
        "the SPRT condemns unambiguous degradation in fewer samples than",
        "the sign test's hard minimum of m = 5, at the price of a Gaussian",
        "modeling assumption (outliers clamped to keep it honest).",
    ]
    report("extension_parametric", "\n".join(lines))

    strong = next(r for r in rows if r["ratio"] == 3.0)
    assert strong["sprt"] < strong["sign"], "SPRT faster on strong evidence"
    assert fp["sprt"] < 0.15, "SPRT false positives remain bounded"
    assert fp["sign"] < 0.10, "sign test false positives remain bounded"
