"""Ablation: exponential suspension backoff vs constant suspension.

Section 4.1: "The exponential increase makes the low-importance process
adjust to the time scale of other processes' execution patterns" — during
long high-importance activity the LI process makes only infrequent
execution probes.  With a *constant* suspension time (modeled by setting
the cap equal to the initial suspension), the LI process probes the
contended resource over and over, interfering more with the
high-importance workload; the price of exponential backoff is suspension
overshoot after the activity ends (Figure 7).

The trial bodies live in :mod:`repro.experiments.ablations`; this module
is a thin reference to the registered ``ablation_backoff``
:class:`~repro.experiments.spec.ExperimentSpec` (one trial per backoff
arm at the historical kernel seed, so outputs are bit-identical to the
pre-platform runs).
"""

from __future__ import annotations

from _util import run_spec


def run_ablation() -> dict[str, dict]:
    report = run_spec("ablation_backoff")
    return {
        cell["params"]["backoff"]: {
            metric: values[0] for metric, values in cell["samples"].items()
        }
        for cell in report["cells"]
    }


def test_ablation_backoff(benchmark, report):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    expo = data["exponential"]
    const = data["constant"]
    lines = [
        "Ablation: exponential vs constant suspension",
        "=" * 60,
        f"{'':<28} {'exponential':>13} {'constant':>13}",
        f"{'HI workload time (s)':<28} {expo['hi_time']:>13.1f} {const['hi_time']:>13.1f}",
        f"{'LI probes during HI':<28} {expo['probes_during_hi']:>13} "
        f"{const['probes_during_hi']:>13}",
        f"{'overshoot after HI (s)':<28} {expo['overshoot']:>13.1f} "
        f"{const['overshoot']:>13.1f}",
        f"{'LI finish time (s)':<28} {expo['li_done']:>13.1f} {const['li_done']:>13.1f}",
        "",
        "Exponential backoff probes the contended disk far less often (the",
        "LI process adjusts to the HI process's time scale) at the price of",
        "suspension overshoot once the HI activity ends (Figure 7).",
    ]
    report("ablation_backoff", "\n".join(lines))

    assert const["probes_during_hi"] > 3 * max(expo["probes_during_hi"], 1)
    assert expo["overshoot"] > const["overshoot"]
    assert expo["hi_time"] <= const["hi_time"] * 1.05
