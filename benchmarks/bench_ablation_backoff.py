"""Ablation: exponential suspension backoff vs constant suspension.

Section 4.1: "The exponential increase makes the low-importance process
adjust to the time scale of other processes' execution patterns" — during
long high-importance activity the LI process makes only infrequent
execution probes.  With a *constant* suspension time (modeled by setting
the cap equal to the initial suspension), the LI process probes the
contended resource over and over, interfering more with the
high-importance workload; the price of exponential backoff is suspension
overshoot after the activity ends (Figure 7).
"""

from __future__ import annotations

from repro.core.config import MannersConfig
from repro.core.signtest import Judgment
from repro.simos.effects import Delay, DiskRead, UseCPU
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import MannersTestpoint, SimManners

BASE = MannersConfig(
    bootstrap_testpoints=20,
    probation_period=0.0,
    averaging_n=400,
    min_testpoint_interval=0.1,
    initial_suspension=1.0,
    max_suspension=256.0,
)

HI_START = 30.0
HI_ITEMS = 3000  # ~100 s of exclusive disk use


def _li_reader(kernel, results):
    done = 0.0
    for i in range(200_000):
        yield DiskRead("C", (i * 37) % 500_000, 65536)
        done += 1.0
        yield MannersTestpoint((done,))
        if done >= 6000:
            break
    results["li_done"] = kernel.now


def _hi_burst(kernel, results):
    yield Delay(HI_START)
    for i in range(HI_ITEMS):
        yield DiskRead("C", (i * 53 + 7) % 500_000, 65536)
        yield UseCPU(0.001)
    results["hi_done"] = kernel.now


def run_one(constant_backoff: bool):
    config = BASE if not constant_backoff else BASE.with_overrides(
        max_suspension=BASE.initial_suspension
    )
    kernel = Kernel(seed=9)
    kernel.add_disk("C")
    manners = SimManners(kernel, config)
    results: dict[str, float] = {}
    thread = kernel.spawn("li", _li_reader(kernel, results), process="li")
    manners.regulate(thread)
    kernel.spawn("hi", _hi_burst(kernel, results), process="hi")
    kernel.run(until=4000.0)
    trace = manners.traces[thread]
    hi_end = results.get("hi_done", float("nan"))
    # Probes during the HI window: processed testpoints between start+10
    # and the HI completion.
    probes = sum(1 for r in trace.records if HI_START + 10.0 <= r.when <= hi_end)
    overshoot = 0.0
    for r in trace.records:
        if r.when > hi_end:
            overshoot = r.when - hi_end
            break
    return {
        "hi_time": hi_end - HI_START,
        "li_done": results.get("li_done"),
        "probes_during_hi": probes,
        "overshoot": overshoot,
    }


def run_ablation():
    return {
        "exponential": run_one(constant_backoff=False),
        "constant": run_one(constant_backoff=True),
    }


def test_ablation_backoff(benchmark, report):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    expo = data["exponential"]
    const = data["constant"]
    lines = [
        "Ablation: exponential vs constant suspension",
        "=" * 60,
        f"{'':<28} {'exponential':>13} {'constant':>13}",
        f"{'HI workload time (s)':<28} {expo['hi_time']:>13.1f} {const['hi_time']:>13.1f}",
        f"{'LI probes during HI':<28} {expo['probes_during_hi']:>13} "
        f"{const['probes_during_hi']:>13}",
        f"{'overshoot after HI (s)':<28} {expo['overshoot']:>13.1f} "
        f"{const['overshoot']:>13.1f}",
        f"{'LI finish time (s)':<28} {expo['li_done']:>13.1f} {const['li_done']:>13.1f}",
        "",
        "Exponential backoff probes the contended disk far less often (the",
        "LI process adjusts to the HI process's time scale) at the price of",
        "suspension overshoot once the HI activity ends (Figure 7).",
    ]
    report("ablation_backoff", "\n".join(lines))

    assert const["probes_during_hi"] > 3 * max(expo["probes_during_hi"], 1)
    assert expo["overshoot"] > const["overshoot"]
    assert expo["hi_time"] <= const["hi_time"] * 1.05
