"""Figure 9: time-multiplex isolation of two Groveler threads.

Paper (section 9.5): with dummy loads alternating across disks C and D
(which share a SCSI controller) and a dummy CPU load, MS Manners favours
the higher-priority C-drive thread; a load on C shifts execution to the
D-drive thread; a CPU load or loads on both drives suspend both threads.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.scenarios import thread_isolation_trial

from _util import full_run, run_bench_trials


def run_figure9():
    duration = 600.0 if full_run() else 300.0
    [isolated] = run_bench_trials(
        partial(thread_isolation_trial, duration=duration), trials=1, seed_base=11
    )
    [ablation] = run_bench_trials(
        partial(thread_isolation_trial, duration=duration / 2, isolation=False),
        trials=1,
        seed_base=11,
    )
    return isolated, ablation


def test_fig9_thread_isolation(benchmark, report):
    isolated, ablation = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    duty = isolated.duty
    duration = isolated.duration
    phase = duration / 6.0
    labels = ["idle", "disk C load", "disk D load", "CPU load", "both disks", "idle again"]

    lines = [
        "Figure 9: Groveler thread duty by load phase",
        "=" * 60,
        f"{'phase':<14} {'grovelC duty':>13} {'grovelD duty':>13}",
    ]
    fractions = {}
    for i, label in enumerate(labels):
        lo, hi = i * phase + 10.0, (i + 1) * phase
        c = duty.duty_fraction(isolated.threads["grovelC"], lo, hi)
        d = duty.duty_fraction(isolated.threads["grovelD"], lo, hi)
        fractions[label] = (c, d)
        lines.append(f"{label:<14} {c:>13.2f} {d:>13.2f}")
    lines += [
        "",
        f"mutual execution overlap with isolation:    {isolated.mutual_overlap:6.1%}",
        f"mutual execution overlap without isolation:  {ablation.mutual_overlap:6.1%}",
        "paper: C-thread favoured when idle; load on C shifts execution to D;",
        "CPU or both-disk load suspends both; some perturbation from backoff",
        "and the shared SCSI controller.",
    ]
    report("fig9_thread_isolation", "\n".join(lines))

    c_idle, d_idle = fractions["idle"]
    assert c_idle > d_idle, "higher-priority C thread favoured on idle system"
    c_cload, d_cload = fractions["disk C load"]
    assert d_cload > c_cload, "load on C shifts execution to D"
    c_dload, d_dload = fractions["disk D load"]
    assert c_dload > d_dload, "load on D shifts execution back to C"
    c_cpu, d_cpu = fractions["CPU load"]
    assert c_cpu + d_cpu < 0.5, "CPU load suspends both threads"
    c_both, d_both = fractions["both disks"]
    assert c_both + d_both < 0.5, "both-disk load suspends both threads"
    assert isolated.mutual_overlap < 0.1
    assert ablation.mutual_overlap > 3 * isolated.mutual_overlap
