#!/usr/bin/env python3
"""Figures 7 & 8 in your terminal: regulation dynamics, plotted.

Runs one MS Manners trial of the defragmenter/database experiment with
tracing enabled and renders, in ASCII:

* the defragmenter's execution duty over time (Figure 7) — watch it run
  freely, collapse to occasional probes while the database load runs, and
  resume after the suspension overshoot;
* its normalized progress rate (Figure 8) — the per-window noise that
  makes the statistical comparator necessary.

Run:  python examples/duty_trace_demo.py [--scale 0.5]
"""

from __future__ import annotations

import argparse

from repro.analysis.ascii_plot import timeseries_plot
from repro.apps.base import RegulationMode
from repro.experiments import defrag_database_trial


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=4242)
    args = parser.parse_args()

    print(f"running the MS Manners trial with tracing (scale {args.scale})...\n")
    result = defrag_database_trial(
        RegulationMode.MS_MANNERS, seed=args.seed, scale=args.scale, with_traces=True
    )
    duty = result.extras["duty"]
    thread = result.extras["defrag_thread"]
    trace = result.extras["testpoints"]
    hi_start, hi_end = result.extras["hi_window"]
    end = result.li_time or hi_end + 400.0

    duty_series = duty.binned(thread, 0.0, end, max(end / 72.0, 1.0))
    print(
        timeseries_plot(
            duty_series,
            title=f"Figure 7: defragmenter duty "
            f"(database load runs {hi_start:.0f}s - {hi_end:.0f}s)",
            y_label="duty",
            x_label="s",
        )
    )
    print()
    progress_series = trace.normalized_progress(0.0, end, window=2.0)
    print(
        timeseries_plot(
            progress_series,
            title="Figure 8: normalized progress (1.0 = at target rate)",
            y_label="rate",
            x_label="s",
        )
    )
    print()
    print(
        f"defragmenter finished at t={result.li_time:.0f}s; database load took "
        f"{hi_end - hi_start:.0f}s."
    )
    print("note the overshoot: execution resumes well after the load ends —")
    print("the price of exponential backoff (bounded by the suspension cap).")


if __name__ == "__main__":
    main()
