#!/usr/bin/env python3
"""Regulate a real, unmodified OS process — BeNice with SIGSTOP.

This demo spawns an actual child process that chews through a batch job
and publishes a cumulative progress counter to a JSON file (its only
concession to observability — exactly the role Windows performance
counters play in the paper's BeNice, section 7.2).  `PosixBeNice` polls
the counter, runs the full MS Manners pipeline on it, and enforces
suspensions with SIGSTOP/SIGCONT.

Midway we inflict "contention" on the worker (it slows 10x, as it would
when a high-importance process competes for its bottleneck).  Watch the
regulator notice the progress collapse and freeze the worker with
exponentially growing suspensions; when the contention ends, a probe
succeeds and the worker runs free again.

Run:  python examples/regulate_real_process.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core import MannersConfig
from repro.realtime import JsonFileCounters, PosixBeNice

WORKER = r"""
import json, os, sys, time
counter_path, marker_path = sys.argv[1], sys.argv[2]
done = 0
while True:
    time.sleep(0.05 if os.path.exists(marker_path) else 0.005)
    done += 1
    tmp = counter_path + ".tmp"
    with open(tmp, "w") as f:
        json.dump({"items": done}, f)
    os.replace(tmp, counter_path)
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="manners-demo-"))
    counter = workdir / "progress.json"
    marker = workdir / "contention.marker"

    worker = subprocess.Popen([sys.executable, "-c", WORKER, str(counter), str(marker)])
    print(f"spawned unmodified worker (pid {worker.pid}); it only writes {counter.name}")

    config = MannersConfig(
        bootstrap_testpoints=8,
        probation_period=0.0,
        averaging_n=60,
        min_testpoint_interval=0.01,
        initial_suspension=0.25,
        max_suspension=2.0,
        hung_threshold=10.0,
    )
    benice = PosixBeNice(worker.pid, JsonFileCounters(counter, ["items"]), config=config)

    def items() -> int:
        try:
            return json.loads(counter.read_text())["items"]
        except Exception:
            return 0

    try:
        with benice:
            print("\ncalibrating at full speed...")
            time.sleep(2.5)
            print(f"  items: {items()}   suspensions: {benice.stats.suspensions}")

            print("\ncontention begins (worker slows 10x)...")
            marker.write_text("contention")
            for _ in range(3):
                time.sleep(1.5)
                print(
                    f"  items: {items():5d}   suspensions: {benice.stats.suspensions}"
                    f"   frozen time: {benice.stats.total_suspension_time:.1f}s"
                )

            print("\ncontention ends...")
            marker.unlink()
            time.sleep(2.5)
            rate_probe_start = items()
            time.sleep(1.0)
            print(
                f"  items: {items()}   rate: {items() - rate_probe_start}/s "
                f"(full speed again)"
            )
        print("\nregulator stopped; worker resumed and untouched.")
    finally:
        worker.kill()
        worker.wait()


if __name__ == "__main__":
    main()
