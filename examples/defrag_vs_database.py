#!/usr/bin/env python3
"""The paper's first experiment (Figure 3): defragmenter vs SQL Server.

Runs one trial per configuration of the simulated experiment behind
Figure 3 — a disk defragmenter (low importance) sharing a disk with a
database bulk load (high importance) — and prints the database's run time
under each regime, next to the paper's numbers.

Run:  python examples/defrag_vs_database.py [--scale 0.5]
"""

from __future__ import annotations

import argparse

from repro.apps.base import RegulationMode
from repro.experiments import defrag_database_trial

PAPER = {
    RegulationMode.NOT_RUNNING: (300.0, "the control"),
    RegulationMode.UNREGULATED: (570.0, "+90%: contention"),
    RegulationMode.CPU_PRIORITY: (570.0, "no appreciable difference"),
    RegulationMode.MS_MANNERS: (321.0, "+7%: order-of-magnitude reduction"),
    RegulationMode.BENICE: (321.0, "external regulation, same effect"),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="workload scale (1.0 = paper-magnitude ~300s database load)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"running one trial per configuration at scale {args.scale} ...\n")
    print(f"{'configuration':<16} {'DB time':>9} {'defrag time':>12}   paper (300s base)")
    print("-" * 78)
    base = None
    for mode in PAPER:
        result = defrag_database_trial(mode, seed=args.seed, scale=args.scale)
        if base is None and mode is RegulationMode.NOT_RUNNING:
            base = result.hi_time
        rel = f"({result.hi_time / base:4.2f}x)" if base else ""
        li = f"{result.li_time:10.1f}s" if result.li_time else f"{'—':>11}"
        paper_time, note = PAPER[mode]
        print(
            f"{mode.value:<16} {result.hi_time:8.1f}s {li} {rel:>8}   "
            f"~{paper_time:.0f}s — {note}"
        )
    print()
    print("shape check: unregulated roughly doubles the database time; CPU")
    print("priority does not help (the contention is on the disk); MS Manners")
    print("and BeNice keep the database within a few percent of baseline.")


if __name__ == "__main__":
    main()
