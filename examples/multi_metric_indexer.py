#!/usr/bin/env python3
"""Multiple concurrent progress metrics: the content indexer (section 4.4).

A content indexer progresses along two dimensions at once — bytes of
content scanned and index entries added — that are positively correlated
over the long term but anti-correlated over the short term.  No single
scalar reflects its progress.  MS Manners calibrates a target rate for
*each* metric by ridge regression over exponentially averaged sufficient
statistics (section 6.3), computes a target duration per testpoint as the
sum of per-metric target durations, and regulates on that.

This demo runs the indexer on the simulator, then prints the rates the
regression inferred next to the indexer's actual cost model — the numbers
it had to discover from nothing but (duration, progress-deltas) samples.

Run:  python examples/multi_metric_indexer.py
"""

from __future__ import annotations

import random

from repro.apps import ContentIndexer, DiskHog
from repro.core import MannersConfig
from repro.simos import Kernel, SimManners, Volume, populate_volume
from repro.simos.workload import Burst


def main() -> None:
    kernel = Kernel(seed=21)
    kernel.add_disk("C")
    volume = Volume("C", "C", total_blocks=300_000)
    rng = random.Random(21)
    populate_volume(
        volume, rng, file_count=600,
        size_range=(32 * 1024, 256 * 1024), fragment_range=(1, 2),
    )

    config = MannersConfig(
        bootstrap_testpoints=16,
        probation_period=0.0,
        averaging_n=500,
        min_testpoint_interval=0.1,
        initial_suspension=0.5,
        max_suspension=32.0,
    )
    manners = SimManners(kernel, config)
    indexer = ContentIndexer(kernel, volume, manners=manners)
    thread = indexer.spawn()

    # Some mid-run high-importance activity so regulation has work to do.
    DiskHog(kernel, "C", [Burst(20.0, 45.0)], seed=5).spawn()

    regulator = manners.regulator(thread)
    kernel.run(until=15.0)
    cal = regulator.calibrator(0)
    early = cal.rates()
    kernel.run(until=1200.0)

    stats = indexer.stats
    print("content indexer finished" if indexer.result.elapsed else "still running")
    print(f"  bytes scanned:  {stats.bytes_scanned:>12,}")
    print(f"  indices added:  {stats.indices_added:>12,}")
    print()
    rates = cal.rates()
    print("rates inferred by ridge regression (progress units / second):")
    print(f"  scanning:  early {early[0] / 1e6:7.2f} MB/s -> final {rates[0] / 1e6:7.2f} MB/s")
    print(f"  indexing:  early {early[1]:7.1f} idx/s -> final {rates[1]:7.1f} idx/s")
    print()
    print("for comparison, the paper's worked example (section 4.4) uses an")
    print("indexer scanning at 750 kB/s and indexing at 120 indices/s; the")
    print("regression discovers whatever this machine actually delivers.")
    dur = cal.target_duration([60_000.0, 5.0])
    print()
    print(
        f"target duration for '60 kB scanned + 5 indices': {dur * 1000:.0f} ms "
        "(the paper's example computes 122 ms on its rates)"
    )
    trace = manners.traces[thread]
    poors = sum(1 for r in trace.records if r.judgment and r.judgment.value == "poor")
    print(f"\npoor judgments during the run: {poors} (the disk hog window)")


if __name__ == "__main__":
    main()
