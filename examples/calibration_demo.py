#!/usr/bin/env python3
"""Automatic target calibration from a worst-case start (Figure 10).

The defragmenter starts with no prior calibration, in the middle of a
burst of a sinusoidally modulated bursty disk load, with a live probation
period.  Watch the calibrating target duration fall from its inflated
initial value toward the ideal as idle-period samples accumulate — with no
manual tuning and no dedicated calibration run (section 4.3).

Run:  python examples/calibration_demo.py [--hours 6]
"""

from __future__ import annotations

import argparse

from repro.experiments import calibration_trial


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    probation = args.hours / 4.0
    print(
        f"simulating {args.hours:.0f} hours (probation {probation:.1f} h, "
        f"diurnal cycle {args.hours / 2:.1f} h); paper runs 48 h / 24 h ...\n"
    )
    result = calibration_trial(
        seed=args.seed,
        hours=args.hours,
        probation_hours=probation,
        diurnal_hours=args.hours / 2.0,
        scale=0.4,
    )

    print(f"{'hour':>6} {'target duration':>16} {'defrag activity':>16}")
    print("-" * 42)
    activity = dict(result.activity)
    for hour, target in result.target_trajectory:
        act = activity.get(hour, 0.0)
        marker = " (probation)" if hour < probation else ""
        print(f"{hour:>6} {target:>15.3f}s {act:>15.1%}{marker}")

    print()
    print(f"initial target duration: {result.initial_target:.3f}s")
    print(f"final target duration:   {result.final_target:.3f}s")
    print(
        f"inflation at start:      "
        f"{result.initial_target / result.final_target:.2f}x "
        "(paper: 1600ms start vs ~480ms ideal = 3.3x over 48h)"
    )
    print(
        f"execution in idle time:  {result.execution_in_idle:.1%} "
        "(paper: 94% — regulation keeps the defragmenter out of the way"
    )
    print("even while its target is still calibrating)")


if __name__ == "__main__":
    main()
