#!/usr/bin/env python3
"""The paper's second experiment (Figure 4): SIS Groveler vs Office Setup.

The Groveler (low importance) scans a volume holding two identical
directory trees, reading file contents and merging duplicates; thirty
seconds in, an Office-style installation (high importance) begins copying
from a CD-ROM onto the same disk.

Run:  python examples/groveler_vs_setup.py [--scale 0.5]
"""

from __future__ import annotations

import argparse

from repro.apps.base import RegulationMode
from repro.experiments import groveler_setup_trial

PAPER = {
    RegulationMode.NOT_RUNNING: (250.0, "the control"),
    RegulationMode.UNREGULATED: (475.0, "+90%: contention"),
    RegulationMode.CPU_PRIORITY: (475.0, "no appreciable difference"),
    RegulationMode.MS_MANNERS: (280.0, "+12%: nearly an order of magnitude"),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"running one trial per configuration at scale {args.scale} ...\n")
    print(f"{'configuration':<16} {'Setup time':>11} {'Groveler time':>14}   paper (250s base)")
    print("-" * 80)
    base = None
    for mode in PAPER:
        result = groveler_setup_trial(mode, seed=args.seed, scale=args.scale)
        if base is None and mode is RegulationMode.NOT_RUNNING:
            base = result.hi_time
        rel = f"({result.hi_time / base:4.2f}x)" if base else ""
        li = f"{result.li_time:12.1f}s" if result.li_time else f"{'—':>13}"
        paper_time, note = PAPER[mode]
        print(
            f"{mode.value:<16} {result.hi_time:10.1f}s {li} {rel:>8}   "
            f"~{paper_time:.0f}s — {note}"
        )
        if mode is RegulationMode.MS_MANNERS and "groveler_stats" in result.extras:
            stats = result.extras["groveler_stats"]
            print(
                f"{'':16} (groveled {stats.files_groveled} files, merged "
                f"{stats.duplicates_merged} duplicates, reclaimed "
                f"{stats.blocks_reclaimed} blocks)"
            )
    print()
    print("the regulated Groveler defers to Setup and pays for it afterwards")
    print("with suspension overshoot — the Figure 6 trade-off.")


if __name__ == "__main__":
    main()
