#!/usr/bin/env python3
"""BeNice: regulate an *unmodified* application from the outside.

The defragmenter here never calls a testpoint function.  It only publishes
two performance counters (blocks moved, move operations) — the standard
export mechanism long-running utilities already use.  BeNice polls those
counters at an adaptive interval, feeds them to the MS Manners engine, and
enforces suspensions through the kernel's debug interface, exactly as the
paper's BeNice does with ``SuspendThread`` (section 7.2).

Run:  python examples/benice_external.py
"""

from __future__ import annotations

import random

from repro.apps import Defragmenter, DiskHog
from repro.benice import BeNice
from repro.core import MannersConfig
from repro.simos import Kernel, PerfCounterRegistry, Volume, populate_volume
from repro.simos.workload import Burst


def main() -> None:
    kernel = Kernel(seed=3)
    kernel.add_disk("C")
    volume = Volume("C", "C", total_blocks=300_000)
    rng = random.Random(3)
    populate_volume(
        volume, rng, file_count=900,
        size_range=(32 * 1024, 256 * 1024), fragment_range=(2, 6),
    )
    registry = PerfCounterRegistry()

    # The unmodified application: publishes counters, knows nothing of
    # regulation.
    defrag = Defragmenter(kernel, [volume], registry=registry)
    threads = defrag.spawn()

    # High-importance activity arrives in two bursts.
    bursts = [Burst(20.0, 50.0), Burst(90.0, 120.0)]
    DiskHog(kernel, "C", bursts, seed=17).spawn()

    config = MannersConfig(
        bootstrap_testpoints=16,
        probation_period=0.0,
        averaging_n=400,
        min_testpoint_interval=0.1,
        initial_suspension=1.0,
        max_suspension=64.0,
    )
    benice = BeNice(
        kernel,
        registry,
        target_process="defrag",
        counter_names=("C.blocks_moved", "C.move_ops"),
        target_threads=threads,
        config=config,
    )
    benice.spawn()

    print("running: unmodified defragmenter + BeNice + bursty HI disk load\n")
    for checkpoint in (20, 50, 90, 120, 200, 400, 800):
        kernel.run(until=float(checkpoint))
        moved = registry.read("defrag", "C.move_ops")
        print(
            f"  t={kernel.now:6.1f}s  move ops: {moved:6.0f}   "
            f"polls: {benice.stats.polls:4d}   "
            f"suspensions: {benice.stats.suspensions:3d}   "
            f"poll interval: {benice.stats.final_interval or benice._poller.interval:.2f}s"
        )
        if defrag.results["C"].elapsed is not None:
            break
    kernel.run(until=4000.0)

    result = defrag.results["C"]
    print()
    print(f"defragmentation finished in {result.elapsed:.1f}s")
    print(
        f"BeNice: {benice.stats.polls} polls, {benice.stats.suspensions} "
        f"suspensions totalling {benice.stats.total_suspension_time:.1f}s"
    )
    print(
        f"{benice.stats.polls_without_progress} polls saw no counter change "
        "(the adaptive interval tracks the update rate)"
    )
    print("\nno application changes were required — only published counters.")


if __name__ == "__main__":
    main()
