#!/usr/bin/env python3
"""Quickstart: regulate a real low-importance Python thread.

This is the paper's deployment story in miniature, on your actual machine
(wall-clock time, real threads, standard library only):

1. a *low-importance* worker chews through a batch job, calling
   ``testpoint()`` with its cumulative progress after every item — the one
   integration point MS Manners asks of an application (section 7.1);
2. midway, a *high-importance* burst arrives and contends for the same
   bottleneck; the worker's progress rate drops; the regulator notices
   (paired-sample sign test) and suspends the worker with exponential
   backoff;
3. the burst ends, a probe succeeds, and the worker resumes full speed.

The "resource" here is a token-bucket standing in for a disk/CPU/network
bottleneck so the demo is deterministic and fast; with a real workload you
simply drop the same ``testpoint()`` call into your loop.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import threading
import time

from repro import Manners, MannersConfig


class Bottleneck:
    """A token-bucket shared resource (~400 ops/s capacity)."""

    def __init__(self, rate: float = 400.0) -> None:
        self._rate = rate
        self._lock = threading.Lock()
        self._available = 1.0
        self._last = time.monotonic()

    def use(self, amount: float = 1.0) -> None:
        while True:
            with self._lock:
                now = time.monotonic()
                self._available = min(
                    self._available + (now - self._last) * self._rate, self._rate / 10
                )
                self._last = now
                if self._available >= amount:
                    self._available -= amount
                    return
            time.sleep(0.001)


def main() -> None:
    bottleneck = Bottleneck()
    config = MannersConfig(
        bootstrap_testpoints=20,
        probation_period=0.0,
        averaging_n=200,
        min_testpoint_interval=0.05,
        initial_suspension=0.25,
        max_suspension=4.0,
    )
    manners = Manners(config)

    hi_active = threading.Event()
    hi_done_items = [0]

    def high_importance_burst() -> None:
        time.sleep(2.0)
        hi_active.set()
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline:
            # Symmetric contention (the paper's core assumption): the
            # high-importance consumer draws the same unit operations.
            bottleneck.use(1.0)
            hi_done_items[0] += 1
        hi_active.clear()

    burst = threading.Thread(target=high_importance_burst)
    burst.start()

    done = 0
    suspended_total = 0.0
    start = time.monotonic()
    print("low-importance worker starting (high-importance burst at t=2s)...")
    last_report = 0.0
    while time.monotonic() - start < 8.0:
        bottleneck.use(1.0)  # one item of low-importance work
        done += 1
        pause = manners.testpoint([done])
        if pause > 0.0:
            suspended_total += pause
            print(
                f"  t={time.monotonic() - start:5.2f}s  progress judged poor -> "
                f"suspending {pause:.2f}s (HI active: {hi_active.is_set()})"
            )
            time.sleep(pause)
        t = time.monotonic() - start
        if t - last_report >= 1.0:
            print(f"  t={t:5.2f}s  items done: {done}")
            last_report = t

    burst.join()
    stats = manners.regulator.stats
    print()
    print(f"worker items completed:        {done}")
    print(f"high-importance items:         {hi_done_items[0]}")
    print(f"total suspension imposed:      {suspended_total:.2f}s")
    print(
        f"judgments: {stats.good_judgments} good, {stats.poor_judgments} poor, "
        f"{stats.indeterminate} indeterminate"
    )
    print("the worker deferred during the burst and resumed afterwards.")


if __name__ == "__main__":
    main()
