"""End-to-end daemon tests: live Unix socket, real client, injected faults.

The daemon runs on an event loop in a background thread; the tests speak
to it exactly the way workers and operators do — through
:class:`DaemonClient` and :class:`ControlClient` over the socket.  Chaos
is armed through the control protocol's ``inject`` op so the tests cross
no thread boundary into the daemon's internals.
"""

import asyncio
import shutil
import socket
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.daemon.client import ControlClient, DaemonClient
from repro.daemon.journal import StateJournal, state_digest
from repro.daemon.protocol import decode_frame, encode_frame
from repro.daemon.server import RegulatorDaemon
from repro.daemon.soak import match_faults, soak_config
from repro.obs.events import FaultInjected, RecoveryAction
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry


@pytest.fixture
def rundir():
    # Unix socket paths are capped near 108 bytes; pytest's tmp_path can
    # blow that, so bind under /tmp.
    path = Path(tempfile.mkdtemp(prefix="reprod-"))
    yield path
    shutil.rmtree(path, ignore_errors=True)


class LiveDaemon:
    """One daemon serving on a background event-loop thread."""

    def __init__(self, rundir: Path, **kwargs) -> None:
        self.socket_path = str(rundir / "daemon.sock")
        self.sink = MemorySink()
        kwargs.setdefault("config", soak_config())
        kwargs.setdefault("heartbeat_interval", 0.2)
        kwargs.setdefault("telemetry", Telemetry(sink=self.sink, label="daemon"))
        self.daemon = RegulatorDaemon(self.socket_path, **kwargs)
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "LiveDaemon":
        ready = threading.Event()  # duck-types asyncio.Event for run()
        self._thread = threading.Thread(
            target=asyncio.run, args=(self.daemon.run(ready=ready),), daemon=True
        )
        self._thread.start()
        assert ready.wait(10.0), "daemon never opened its socket"
        return self

    def __exit__(self, *exc_info: object) -> None:
        try:
            with ControlClient(self.socket_path, connect_timeout=2.0) as control:
                control.request("stop")
        except OSError:
            pass  # already drained
        assert self._thread is not None
        self._thread.join(10.0)
        assert not self._thread.is_alive(), "daemon did not drain"

    def inject(self, kind: str, target: str, param: float = 0.0) -> None:
        with ControlClient(self.socket_path) as control:
            reply = control.request("inject", kind=kind, target=target, param=param)
        assert reply["op"] == "ok", reply

    def events(self):
        return list(self.sink.events)


class TestRoundTrip:
    def test_testpoints_status_and_drain(self, rundir):
        with LiveDaemon(rundir) as live:
            with DaemonClient(live.socket_path, "w1") as client:
                done = 0
                for _ in range(3):
                    done += 1
                    reply = client.testpoint([float(done)])
                    assert reply["op"] == "decision"
                    assert reply["processed"] in (True, False)
                with ControlClient(live.socket_path) as control:
                    status = control.request("status")
                assert status["counters"]["testpoints"] >= 3
                assert "w1" in status["workers"]

    def test_protocol_mismatch_is_rejected(self, rundir):
        with LiveDaemon(rundir) as live:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
                raw.settimeout(5.0)
                raw.connect(live.socket_path)
                raw.sendall(encode_frame({"op": "hello", "proto": 99, "role": "worker"}))
                reply = decode_frame(raw.makefile("rb").readline().rstrip(b"\n"))
            assert reply["op"] == "reject"
            assert "version" in reply["reason"]

    def test_vanished_worker_releases_its_slot(self, rundir):
        with LiveDaemon(rundir) as live:
            client = DaemonClient(live.socket_path, "w1")
            client.connect()
            client.testpoint([1.0])
            client._sock.close()  # crash, not a polite bye
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with ControlClient(live.socket_path) as control:
                    if "w1" not in control.request("status")["workers"]:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("dead worker never cleaned up")
        actions = [e.action for e in live.events() if isinstance(e, RecoveryAction)]
        assert "slot_released" in actions


class TestChaosAbsorption:
    def test_dropped_request_recovered_by_retransmit(self, rundir):
        with LiveDaemon(rundir) as live:
            with DaemonClient(
                live.socket_path, "w1", message_timeout=0.3
            ) as client:
                client.testpoint([1.0])
                live.inject("msg_drop", "w1")
                reply = client.testpoint([2.0])
                assert reply["op"] == "decision"
                assert client.stats["resends"] >= 1
                client.testpoint([3.0])
        events = live.events()
        injected, unmatched = match_faults(events)
        assert [f.fault for f in injected] == ["msg_drop"]
        assert not unmatched

    def test_duplicate_and_torn_replies_absorbed(self, rundir):
        with LiveDaemon(rundir) as live:
            with DaemonClient(
                live.socket_path, "w1", message_timeout=0.3
            ) as client:
                client.testpoint([1.0])
                live.inject("msg_dup", "w1")
                live.inject("frame_truncate", "w1")
                for done in range(2, 8):
                    client.testpoint([float(done)])
                assert client.stats["dups"] >= 1
                assert client.stats["bad_frames"] >= 1
        events = live.events()
        injected, unmatched = match_faults(events)
        assert {f.fault for f in injected} == {"msg_dup", "frame_truncate"}
        assert not unmatched

    def test_peer_hang_recovered(self, rundir):
        with LiveDaemon(rundir) as live:
            with DaemonClient(
                live.socket_path, "w1", message_timeout=0.3
            ) as client:
                client.testpoint([1.0])
                live.inject("peer_hang", "w1", param=0.8)
                client.testpoint([2.0])
                client.testpoint([3.0])
        events = live.events()
        faults = [e for e in events if isinstance(e, FaultInjected)]
        assert [f.fault for f in faults] == ["peer_hang"]
        _, unmatched = match_faults(events)
        assert not unmatched


class TestPersistence:
    def test_drain_snapshots_and_restart_restores_bit_identically(self, rundir):
        state_dir = rundir / "state"
        first = LiveDaemon(
            rundir,
            state_dir=str(state_dir),
            journal_interval=0.05,
            save_interval=3600.0,
            fsync_journal=False,
        )
        with first as live:
            with DaemonClient(live.socket_path, "w1", app_id="app") as client:
                for done in range(1, 9):
                    client.testpoint([float(done) * 3])
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    with ControlClient(live.socket_path) as control:
                        if control.request("status")["counters"]["journal_appends"]:
                            break
                    time.sleep(0.05)
        # The drain compacted the journal into an atomic snapshot.
        from repro.core.persistence import TargetStore

        snapshot = TargetStore(state_dir, strict=False).load("app")
        assert snapshot is not None
        second = LiveDaemon(rundir, state_dir=str(state_dir))
        with second as live:
            with DaemonClient(live.socket_path, "w1", app_id="app") as client:
                client.ping()
                with ControlClient(live.socket_path) as control:
                    digests = control.request("digest")
        assert digests["restored"]["app"] == state_digest(snapshot)
        assert digests["current"]["app"] == digests["restored"]["app"]
        actions = [e.action for e in second.events() if isinstance(e, RecoveryAction)]
        assert "state_restored" in actions

    def test_journal_tier_outranks_snapshot_on_restore(self, rundir):
        state_dir = rundir / "state"
        journaled = {"schema": 1, "sets": {}}
        with StateJournal(state_dir) as journal:
            record = journal.append("app", journaled)
        daemon = LiveDaemon(rundir, state_dir=str(state_dir))
        with daemon as live:
            with DaemonClient(live.socket_path, "w1", app_id="app") as client:
                client.ping()
                with ControlClient(live.socket_path) as control:
                    digests = control.request("digest")
        assert digests["journal"]["app"] == record.digest
