"""IPC chaos plans, armed-fault queues, and fault/recovery trace matching."""

import pytest

from repro.core.errors import FaultError
from repro.daemon.chaos import (
    RECOVERY_ACTIONS,
    SCENARIO_KINDS,
    ArmedFault,
    ChaosState,
    ipc_plan,
)
from repro.daemon.soak import match_faults
from repro.faults.plan import IPC_FAULTS, FaultPlan, FaultSpec
from repro.obs.events import FaultInjected, RecoveryAction


class TestPlans:
    def test_same_seed_same_plan(self):
        one = ipc_plan("ipc-chaos", seed=7, duration=60.0, targets=["g1", "c1"])
        two = ipc_plan("ipc-chaos", seed=7, duration=60.0, targets=["g1", "c1"])
        assert one.specs == two.specs

    def test_different_seeds_differ(self):
        one = ipc_plan("ipc-chaos", seed=1, duration=60.0, targets=["g1", "c1"])
        two = ipc_plan("ipc-chaos", seed=2, duration=60.0, targets=["g1", "c1"])
        assert one.specs != two.specs

    def test_kinds_and_targets_drawn_from_scenario(self):
        plan = ipc_plan("peer-hang", seed=3, duration=40.0, targets=["g1"])
        assert plan.specs
        assert {s.kind for s in plan} <= set(SCENARIO_KINDS["peer-hang"])
        assert {s.target for s in plan} == {"g1"}

    def test_count_scales_with_duration(self):
        assert len(ipc_plan("ipc-chaos", 1, 64.0, ["g1"])) == 8
        assert len(ipc_plan("ipc-chaos", 1, 1.0, ["g1"])) == 2  # floor

    def test_daemon_crash_plans_nothing(self):
        assert len(ipc_plan("daemon-crash", seed=1, duration=60.0, targets=["g1"])) == 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultError, match="gremlins"):
            ipc_plan("gremlins", seed=1, duration=60.0, targets=["g1"])


class TestVocabulary:
    def test_every_ipc_fault_has_recovery_actions(self):
        assert set(RECOVERY_ACTIONS) == set(IPC_FAULTS)
        assert all(RECOVERY_ACTIONS.values())

    def test_every_scenario_kind_is_an_ipc_fault(self):
        for kinds in SCENARIO_KINDS.values():
            assert set(kinds) <= IPC_FAULTS


class TestChaosState:
    def test_non_ipc_kind_rejected(self):
        with pytest.raises(FaultError):
            ArmedFault("clock_jump", "g1")

    def test_take_is_fifo_within_kind(self):
        chaos = ChaosState()
        first = chaos.arm("msg_drop", "g1")
        second = chaos.arm("msg_drop", "g1")
        assert chaos.take("g1", ("msg_drop",)) is first
        assert chaos.take("g1", ("msg_drop",)) is second
        assert chaos.take("g1", ("msg_drop",)) is None

    def test_take_skips_other_kinds_preserving_order(self):
        chaos = ChaosState()
        hang = chaos.arm("peer_hang", "g1", param=2.0)
        drop = chaos.arm("msg_drop", "g1")
        assert chaos.take("g1", ("msg_drop", "msg_dup")) is drop
        assert chaos.pending("g1") == (hang,)

    def test_targets_are_isolated(self):
        chaos = ChaosState()
        chaos.arm("msg_dup", "g1")
        assert chaos.take("c1", ("msg_dup",)) is None
        assert chaos.take("g1", ("msg_dup",)) is not None

    def test_arm_plan_schedules_in_time_order(self):
        plan = ipc_plan("ipc-chaos", seed=5, duration=32.0, targets=["g1"])
        pairs = ChaosState().arm_plan(plan)
        assert [at for at, _ in pairs] == sorted(at for at, _ in pairs)
        assert len(pairs) == len(plan)

    def test_arm_plan_rejects_non_ipc_plans(self):
        plan = FaultPlan([FaultSpec(at=1.0, kind="clock_jump", target="w1", param=5.0)])
        with pytest.raises(FaultError, match="non-IPC"):
            ChaosState().arm_plan(plan)


def fault(t, kind, target):
    return FaultInjected(t=t, src="daemon", fault=kind, target=target, param=0.0)


def recovery(t, action, detail):
    return RecoveryAction(t=t, src="daemon", action=action, detail=detail)


class TestMatchFaults:
    def test_fault_matched_by_later_allowed_recovery(self):
        events = [fault(1.0, "msg_drop", "g1"), recovery(1.5, "retransmit_absorbed", "g1")]
        injected, unmatched = match_faults(events)
        assert len(injected) == 1 and not unmatched

    def test_recovery_before_fault_does_not_count(self):
        events = [recovery(0.5, "retransmit_absorbed", "g1"), fault(1.0, "msg_drop", "g1")]
        _, unmatched = match_faults(events)
        assert len(unmatched) == 1

    def test_each_recovery_satisfies_one_fault(self):
        events = [
            fault(1.0, "msg_drop", "g1"),
            fault(2.0, "msg_drop", "g1"),
            recovery(3.0, "resend_served", "g1"),
        ]
        _, unmatched = match_faults(events)
        assert len(unmatched) == 1

    def test_wrong_target_does_not_match(self):
        events = [fault(1.0, "msg_dup", "g1"), recovery(2.0, "duplicate_discarded", "c1")]
        _, unmatched = match_faults(events)
        assert len(unmatched) == 1

    def test_disallowed_action_does_not_match(self):
        events = [fault(1.0, "msg_delay", "g1"), recovery(2.0, "resend_served", "g1")]
        _, unmatched = match_faults(events)
        assert len(unmatched) == 1

    def test_daemon_kill_is_excluded_from_trace_matching(self):
        injected, unmatched = match_faults([fault(1.0, "daemon_kill", "")])
        assert injected == [] and unmatched == []
