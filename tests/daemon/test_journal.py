"""Crash-safety contract of the calibration write-ahead journal."""

import json

from repro.daemon.journal import JOURNAL_NAME, StateJournal, state_digest

STATE_A = {"sets": {"0": {"arity": 1, "calibration": {"rate": 100.0}}}}
STATE_B = {"sets": {"0": {"arity": 1, "calibration": {"rate": 250.0}}}}


class TestDigest:
    def test_key_order_invariant(self):
        assert state_digest({"a": 1, "b": [1, 2]}) == state_digest({"b": [1, 2], "a": 1})

    def test_distinct_states_distinct_digests(self):
        assert state_digest(STATE_A) != state_digest(STATE_B)


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        with StateJournal(tmp_path) as journal:
            record = journal.append("app", STATE_A)
        replayed = StateJournal(tmp_path).replay()
        assert [r.state for r in replayed] == [STATE_A]
        assert replayed[0].digest == record.digest == state_digest(STATE_A)

    def test_latest_state_per_app_wins(self, tmp_path):
        with StateJournal(tmp_path) as journal:
            journal.append("app", STATE_A)
            journal.append("other", STATE_A)
            journal.append("app", STATE_B)
        latest = StateJournal(tmp_path).latest_states()
        assert latest["app"].state == STATE_B
        assert latest["other"].state == STATE_A

    def test_missing_journal_is_empty_history(self, tmp_path):
        journal = StateJournal(tmp_path)
        assert journal.replay() == []
        assert journal.truncated_tail is False

    def test_seq_continues_across_restart(self, tmp_path):
        with StateJournal(tmp_path) as journal:
            first = journal.append("app", STATE_A)
        reopened = StateJournal(tmp_path)
        reopened.replay()
        second = reopened.append("app", STATE_B)
        reopened.close()
        assert second.seq > first.seq


class TestTornTail:
    def test_torn_append_keeps_valid_prefix(self, tmp_path):
        with StateJournal(tmp_path) as journal:
            journal.append("app", STATE_A)
        path = tmp_path / JOURNAL_NAME
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "app_id": "app", "sta')  # torn mid-write
        journal = StateJournal(tmp_path)
        replayed = journal.replay()
        assert [r.state for r in replayed] == [STATE_A]
        assert journal.truncated_tail is True

    def test_damaged_journal_is_quarantined(self, tmp_path):
        with StateJournal(tmp_path) as journal:
            journal.append("app", STATE_A)
        path = tmp_path / JOURNAL_NAME
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        StateJournal(tmp_path).replay()
        assert not path.exists()
        assert (tmp_path / (JOURNAL_NAME + ".corrupt")).exists()

    def test_tampered_state_fails_checksum(self, tmp_path):
        with StateJournal(tmp_path) as journal:
            journal.append("app", STATE_A)
            journal.append("app", STATE_B)
        path = tmp_path / JOURNAL_NAME
        lines = path.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[1])
        record["state"]["sets"]["0"]["calibration"]["rate"] = 1e9
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        journal = StateJournal(tmp_path)
        replayed = journal.replay()
        # Replay stops at the tampered record; the honest prefix survives.
        assert [r.state for r in replayed] == [STATE_A]
        assert journal.truncated_tail is True

    def test_everything_after_damage_is_distrusted(self, tmp_path):
        with StateJournal(tmp_path) as journal:
            journal.append("app", STATE_A)
        path = tmp_path / JOURNAL_NAME
        good_line = path.read_text(encoding="utf-8")
        path.write_text("not json\n" + good_line, encoding="utf-8")
        assert StateJournal(tmp_path).replay() == []


class TestCompact:
    def test_compact_empties_history(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("app", STATE_A)
        journal.compact()
        assert not (tmp_path / JOURNAL_NAME).exists()
        assert StateJournal(tmp_path).replay() == []

    def test_append_after_compact_works(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("app", STATE_A)
        journal.compact()
        journal.append("app", STATE_B)
        journal.close()
        latest = StateJournal(tmp_path).latest_states()
        assert latest["app"].state == STATE_B
