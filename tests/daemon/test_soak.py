"""The soak harness end-to-end: one short fault-injected run per shape."""

import json
import shutil
import tempfile
from pathlib import Path

import pytest

from repro.core.errors import FaultError
from repro.daemon.soak import SoakReport, SoakRunResult, run_soak


@pytest.fixture
def workdir():
    # Soak rundirs hold Unix sockets; stay under the ~108-byte path cap.
    path = Path(tempfile.mkdtemp(prefix="reprosoak-"))
    yield path
    shutil.rmtree(path, ignore_errors=True)


class TestReportShapes:
    def test_empty_report_is_not_ok(self):
        assert SoakReport().ok is False

    def test_one_failed_run_fails_the_report(self):
        good = SoakRunResult(scenario="ipc-chaos", seed=1, duration=1.0, ok=True)
        bad = SoakRunResult(scenario="peer-hang", seed=1, duration=1.0, ok=False)
        assert SoakReport(runs=[good]).ok is True
        assert SoakReport(runs=[good, bad]).ok is False

    def test_to_dict_round_trips_the_verdict(self):
        run = SoakRunResult(scenario="ipc-chaos", seed=2, duration=3.0, ok=True)
        body = SoakReport(runs=[run]).to_dict()
        assert body["ok"] is True
        assert body["runs"][0]["scenario"] == "ipc-chaos"

    def test_unknown_scenario_rejected_before_any_run(self, workdir):
        with pytest.raises(FaultError, match="gremlins"):
            run_soak(["gremlins"], seeds=[1], duration=1.0, workdir=workdir)


class TestShortSoak:
    def test_ipc_chaos_run_matches_every_fault(self, workdir):
        report = run_soak(["ipc-chaos"], seeds=[1], duration=5.0, workdir=workdir)
        assert len(report.runs) == 1
        run = report.runs[0]
        assert run.ok, run.unmatched or run.note
        assert run.injected >= 1
        assert run.matched == run.injected
        assert not run.unmatched
        # Every injection auto-dumped the flight recorder for post-mortem.
        assert run.flight_dumps
        # The workdir is self-describing: the report is persisted for CI
        # artifact uploads.
        saved = json.loads((workdir / "soak-report.json").read_text())
        assert saved == report.to_dict()
