"""Wire-format contract of the daemon's JSON-line IPC protocol."""

import json

import pytest

from repro.daemon.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    require_fields,
)


class TestEncode:
    def test_round_trip(self):
        frame = {"op": "testpoint", "seq": 7, "metrics": [1.0, 2.5]}
        assert decode_frame(encode_frame(frame).rstrip(b"\n")) == frame

    def test_newline_terminated_compact_json(self):
        data = encode_frame({"op": "ping", "seq": 1})
        assert data.endswith(b"\n")
        assert b" " not in data  # compact separators
        assert json.loads(data) == {"op": "ping", "seq": 1}

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"seq": 1})

    def test_unserializable_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"op": "ping", "bad": object()})

    def test_oversize_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"op": "ping", "pad": "x" * MAX_FRAME_BYTES})


class TestDecode:
    @pytest.mark.parametrize(
        "line",
        [
            b"\xff\xfe not utf8",
            b"{truncated",
            b"[1, 2, 3]",
            b'"just a string"',
            b'{"seq": 1}',
            b'{"op": "gremlin"}',
            b'{"op": 42}',
        ],
    )
    def test_damaged_lines_raise(self, line):
        with pytest.raises(ProtocolError):
            decode_frame(line)

    def test_oversize_rejected(self):
        line = b'{"op": "ping", "pad": "' + b"x" * MAX_FRAME_BYTES + b'"}'
        with pytest.raises(ProtocolError):
            decode_frame(line)

    def test_unknown_keys_survive(self):
        # Additive protocol evolution: unknown fields are preserved, not fatal.
        frame = decode_frame(b'{"op": "decision", "seq": 1, "future_field": true}')
        assert frame["future_field"] is True


class TestRequireFields:
    def test_present_fields_pass(self):
        require_fields({"op": "hello", "proto": PROTOCOL_VERSION}, "proto")

    def test_missing_field_names_itself(self):
        with pytest.raises(ProtocolError, match="'seq'"):
            require_fields({"op": "testpoint"}, "seq", "metrics")
