"""Validated REPRO_* environment parsing (repro.analysis.env).

Regression suite for the env-config bugfix sweep: ``REPRO_SCALE`` must be
finite and positive, boolean flags must be parsed case-insensitively from
one shared vocabulary, and integer knobs must treat blank values as unset
while naming the variable and the offending value on garbage.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.analysis.env import check_scale, env_flag, env_int, env_scale, parse_count
from repro.analysis.parallel import resolve_jobs, resolve_shards
from repro.analysis.runner import trial_count

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from _util import bench_cache, bench_scale, full_run  # noqa: E402


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "TRUE", "Yes", "ON"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FULL", raw)
        assert env_flag("REPRO_FULL") is True

    @pytest.mark.parametrize("raw", ["0", "false", "no", "off", "FALSE", "No", "OFF"])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CACHE", raw)
        assert env_flag("REPRO_CACHE", default=True) is False

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert env_flag("REPRO_CACHE", default=True) is True
        assert env_flag("REPRO_CACHE", default=False) is False

    def test_blank_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "   ")
        assert env_flag("REPRO_CACHE", default=True) is True

    @pytest.mark.parametrize("raw", ["2", "enabled", "nope", "None"])
    def test_garbage_rejected_naming_var_and_value(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CACHE", raw)
        with pytest.raises(ValueError) as excinfo:
            env_flag("REPRO_CACHE")
        assert "REPRO_CACHE" in str(excinfo.value)
        assert repr(raw) in str(excinfo.value)

    def test_bench_cache_capitalised_false_disables(self, monkeypatch):
        # Historically REPRO_CACHE=False silently *enabled* the cache
        # (only lowercase "false" was recognized).
        monkeypatch.setenv("REPRO_CACHE", "False")
        assert bench_cache() is None

    def test_bench_cache_on_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert bench_cache() is not None

    def test_full_run_capitalised_no_is_false(self, monkeypatch):
        # Historically REPRO_FULL=No counted as *true* ("No" was not in
        # the recognized falsy tuple).
        monkeypatch.setenv("REPRO_FULL", "No")
        assert full_run() is False
        monkeypatch.setenv("REPRO_FULL", "Yes")
        assert full_run() is True


class TestEnvScale:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0
        assert bench_scale(default=0.25) == 0.25

    def test_parses_and_strips(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "  0.05 ")
        assert bench_scale() == 0.05

    @pytest.mark.parametrize("raw", ["0", "-1", "nan", "inf", "-inf", "tiny"])
    def test_rejects_degenerate_values(self, monkeypatch, raw):
        # bench_scale() used to pass REPRO_SCALE straight to float():
        # "0" silently collapsed every workload to its minimum size and
        # "tiny" raised a bare error naming neither variable nor value.
        monkeypatch.setenv("REPRO_SCALE", raw)
        with pytest.raises(ValueError) as excinfo:
            bench_scale()
        assert "REPRO_SCALE" in str(excinfo.value)
        assert repr(raw) in str(excinfo.value)

    def test_blank_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "")
        assert env_scale(default=0.5) == 0.5

    def test_check_scale_validates_explicit_args(self):
        assert check_scale(0.05) == 0.05
        with pytest.raises(ValueError) as excinfo:
            check_scale(0.0, source="--scale")
        assert "--scale" in str(excinfo.value)


class TestEnvInt:
    @pytest.mark.parametrize("var,resolve", [
        ("REPRO_JOBS", lambda: resolve_jobs(None, default=1)),
        ("REPRO_SHARDS", lambda: resolve_shards(None, default=1)),
        ("REPRO_TRIALS", lambda: trial_count(default=5)),
    ])
    def test_empty_string_counts_as_unset(self, monkeypatch, var, resolve):
        # REPRO_JOBS="" used to raise a bare int() ValueError that named
        # neither the variable nor the value.
        monkeypatch.setenv(var, "")
        expected = 5 if var == "REPRO_TRIALS" else 1
        assert resolve() == expected

    @pytest.mark.parametrize("var,resolve", [
        ("REPRO_JOBS", lambda: resolve_jobs(None, default=1)),
        ("REPRO_SHARDS", lambda: resolve_shards(None, default=1)),
        ("REPRO_TRIALS", lambda: trial_count(default=5)),
    ])
    def test_whitespace_counts_as_unset(self, monkeypatch, var, resolve):
        monkeypatch.setenv(var, "   ")
        resolve()  # must not raise

    @pytest.mark.parametrize("var,resolve", [
        ("REPRO_JOBS", lambda: resolve_jobs(None)),
        ("REPRO_SHARDS", lambda: resolve_shards(None)),
        ("REPRO_TRIALS", lambda: trial_count()),
    ])
    @pytest.mark.parametrize("raw", ["zero", "1.5", "0", "-2"])
    def test_errors_name_var_and_value(self, monkeypatch, var, resolve, raw):
        monkeypatch.setenv(var, raw)
        with pytest.raises(ValueError) as excinfo:
            resolve()
        assert var in str(excinfo.value)
        assert repr(raw) in str(excinfo.value)

    def test_padded_numbers_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", " 3 ")
        assert resolve_jobs(None) == 3

    def test_env_int_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "1")
        assert env_int("REPRO_TRIALS") == 1

    def test_parse_count_names_argument_source(self):
        with pytest.raises(ValueError) as excinfo:
            parse_count("x", "jobs")
        assert "jobs" in str(excinfo.value)
