"""BeNice: external regulation and adaptive polling."""

from __future__ import annotations

import random

import pytest

from repro.apps.defragmenter import Defragmenter
from repro.benice.benice import BeNice
from repro.benice.polling import AdaptivePoller
from repro.core.config import MannersConfig
from repro.core.errors import ConfigError
from repro.simos.effects import Delay, DiskRead
from repro.simos.filesystem import Volume, populate_volume
from repro.simos.kernel import Kernel
from repro.simos.perfcounters import PerfCounterRegistry


class TestAdaptivePoller:
    def test_interval_grows_when_counters_stale(self):
        poller = AdaptivePoller(initial_interval=0.3, window=8)
        for _ in range(8):
            poller.record_poll(progress_changed=False)
        assert poller.interval > 0.3

    def test_interval_shrinks_when_always_fresh(self):
        poller = AdaptivePoller(initial_interval=1.0, min_interval=0.1, window=8)
        for _ in range(8):
            poller.record_poll(progress_changed=True)
        assert poller.interval < 1.0

    def test_lower_limit_respected(self):
        poller = AdaptivePoller(initial_interval=0.2, min_interval=0.1, window=8)
        for _ in range(100):
            poller.record_poll(progress_changed=True)
        assert poller.interval >= 0.1

    def test_upper_limit_respected(self):
        poller = AdaptivePoller(initial_interval=1.0, max_interval=4.0, window=8)
        for _ in range(100):
            poller.record_poll(progress_changed=False)
        assert poller.interval <= 4.0

    def test_mixed_stream_is_stable(self):
        poller = AdaptivePoller(initial_interval=0.5, window=8)
        rng = random.Random(1)
        for _ in range(200):
            poller.record_poll(progress_changed=rng.random() < 0.7)
        assert 0.1 <= poller.interval <= 10.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptivePoller(initial_interval=0.05, min_interval=0.1)
        with pytest.raises(ConfigError):
            AdaptivePoller(window=2)
        with pytest.raises(ConfigError):
            AdaptivePoller(raise_threshold=0.1, lower_threshold=0.2)
        with pytest.raises(ConfigError):
            AdaptivePoller(factor=1.0)


def _fragmented_machine(seed=1, file_count=50):
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    volume = Volume("C", "C", total_blocks=80_000)
    rng = random.Random(seed)
    populate_volume(
        volume, rng, file_count=file_count,
        size_range=(16 * 1024, 96 * 1024), fragment_range=(2, 5),
    )
    return kernel, volume


BENICE_CONFIG = MannersConfig(
    bootstrap_testpoints=8,
    probation_period=0.0,
    averaging_n=200,
    min_testpoint_interval=0.05,
    initial_suspension=0.5,
    max_suspension=16.0,
)


class TestBeNiceEndToEnd:
    def test_regulates_unmodified_defragmenter(self):
        """BeNice suspends the defragmenter when a disk hog appears."""
        kernel, volume = _fragmented_machine(file_count=300)
        registry = PerfCounterRegistry()
        defrag = Defragmenter(kernel, [volume], registry=registry)
        threads = defrag.spawn()
        benice = BeNice(
            kernel, registry, "defrag",
            ("C.blocks_moved", "C.move_ops"), threads,
            config=BENICE_CONFIG,
        )
        benice.spawn()

        def hog():
            yield Delay(5.0)
            for i in range(2000):
                yield DiskRead("C", (i * 53) % 70_000, 65536)

        kernel.spawn("hog", hog(), process="hog")
        kernel.run(until=600.0)
        assert benice.stats.polls > 10
        assert benice.stats.suspensions > 0
        assert benice.stats.total_suspension_time > 0.0

    def test_no_suspensions_on_idle_machine(self):
        kernel, volume = _fragmented_machine()
        registry = PerfCounterRegistry()
        defrag = Defragmenter(kernel, [volume], registry=registry)
        threads = defrag.spawn()
        benice = BeNice(
            kernel, registry, "defrag",
            ("C.blocks_moved", "C.move_ops"), threads,
            config=BENICE_CONFIG,
        )
        benice.spawn()
        kernel.run(until=600.0)
        assert defrag.results["C"].elapsed is not None
        # On an idle machine suspensions are rare blips at most.
        assert benice.stats.total_suspension_time <= 2.0

    def test_overhead_is_small(self):
        """The suspend-poll-resume cycle costs the target only a few
        percent (Figure 5's BeNice column is ~1.5% over unregulated)."""
        kernel, volume = _fragmented_machine(seed=7)
        defrag = Defragmenter(kernel, [volume])
        defrag.spawn()
        kernel.run()
        unregulated = defrag.results["C"].elapsed

        kernel2, volume2 = _fragmented_machine(seed=7)
        registry = PerfCounterRegistry()
        defrag2 = Defragmenter(kernel2, [volume2], registry=registry)
        threads = defrag2.spawn()
        benice = BeNice(
            kernel2, registry, "defrag",
            ("C.blocks_moved", "C.move_ops"), threads,
            config=BENICE_CONFIG,
        )
        benice.spawn()
        kernel2.run(until=3000.0)
        with_benice = defrag2.results["C"].elapsed
        assert with_benice is not None
        overhead = with_benice / unregulated - 1.0
        assert overhead < 0.10

    def test_monitor_exits_with_target(self):
        kernel, volume = _fragmented_machine(file_count=10)
        registry = PerfCounterRegistry()
        defrag = Defragmenter(kernel, [volume], registry=registry)
        threads = defrag.spawn()
        benice = BeNice(
            kernel, registry, "defrag",
            ("C.blocks_moved", "C.move_ops"), threads,
            config=BENICE_CONFIG,
        )
        monitor = benice.spawn()
        kernel.run(until=3000.0)
        assert not monitor.alive or monitor.state.value == "done"

    def test_requires_counters(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            BeNice(kernel, PerfCounterRegistry(), "x", (), ())
