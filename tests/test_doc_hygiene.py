"""Documentation hygiene: every public item carries a docstring.

The deliverable standard for this repository is "doc comments on every
public item"; this test makes that a gate rather than an aspiration.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert undocumented == []


def test_every_public_item_has_a_docstring():
    missing: list[str] = []
    for module in _walk_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if obj.__module__ != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not (attr.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}.{attr_name}")
    assert missing == [], f"undocumented public items: {missing}"
