"""The CI perf gate: compare_reports semantics and the compare script.

The gate (docs/performance.md) fails only on drift in the *bad* direction
beyond the tolerance — events/sec down, or wall time up when the two runs
did identical work.  Improvements must never fail, and wall time must not
be compared across runs of different sizing.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.bench import compare_reports, load_report, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent


def _report(**overrides) -> dict:
    base = {
        "name": "defrag_idle",
        "trials": 4,
        "jobs": 1,
        "wall_time_s": 2.0,
        "events_per_sec": 100_000,
    }
    base.update(overrides)
    return base


class TestCompareReports:
    def test_identical_reports_pass(self):
        assert compare_reports(_report(), _report()) == []

    def test_drop_within_tolerance_passes(self):
        fresh = _report(events_per_sec=85_000)  # -15% < 20%
        assert compare_reports(_report(), fresh) == []

    def test_drop_beyond_tolerance_fails(self):
        fresh = _report(events_per_sec=70_000)  # -30%
        failures = compare_reports(_report(), fresh)
        assert len(failures) == 1
        assert "events/sec regressed" in failures[0]
        assert "defrag_idle" in failures[0]

    def test_improvement_never_fails(self):
        fresh = _report(events_per_sec=1_000_000, wall_time_s=0.1)
        assert compare_reports(_report(), fresh) == []

    def test_tolerance_is_configurable(self):
        fresh = _report(events_per_sec=85_000)
        assert compare_reports(_report(), fresh, tolerance=0.10)  # -15% > 10%

    def test_wall_time_rise_fails_when_same_work(self):
        fresh = _report(wall_time_s=3.0)  # +50%
        failures = compare_reports(_report(), fresh)
        assert len(failures) == 1
        assert "wall time regressed" in failures[0]

    def test_wall_time_ignored_across_different_sizing(self):
        # A bigger run is slower for a good reason; only events/sec gates.
        fresh = _report(trials=8, wall_time_s=4.0, events_per_sec=100_000)
        assert compare_reports(_report(), fresh) == []

    def test_microbench_sizing_keys_gate_wall_time(self):
        base = _report(name="engine_hotpath", events=200_000, rounds=4000)
        bigger = _report(name="engine_hotpath", events=400_000, rounds=4000,
                         wall_time_s=4.0)
        assert compare_reports(base, bigger) == []
        same = _report(name="engine_hotpath", events=200_000, rounds=4000,
                       wall_time_s=4.0)
        assert compare_reports(base, same)

    def test_missing_metrics_are_not_compared(self):
        assert compare_reports({"name": "x"}, {"name": "x"}) == []


class TestLoadReport:
    def test_roundtrips_write_report(self, tmp_path):
        report = _report()
        write_report(report, tmp_path)
        assert load_report("defrag_idle", tmp_path) == report


class TestCompareBaselineScript:
    def _run(self, *args: str) -> subprocess.CompletedProcess:
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "benchmarks" / "compare_baseline.py"),
             *args],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )

    def test_exit_zero_on_identical_and_one_on_regression(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        fresh_dir = tmp_path / "fresh"
        write_report(_report(), baseline_dir)
        write_report(_report(), fresh_dir)

        ok = self._run("--baseline", str(baseline_dir), "--fresh",
                       str(fresh_dir), "defrag_idle")
        assert ok.returncode == 0, ok.stderr
        assert "ok defrag_idle" in ok.stdout
        assert "+0.0%" in ok.stdout  # the drift ratio, not fresh/base

        write_report(_report(events_per_sec=70_000), fresh_dir)
        bad = self._run("--baseline", str(baseline_dir), "--fresh",
                        str(fresh_dir), "defrag_idle")
        assert bad.returncode == 1
        assert "REGRESSION" in bad.stderr
