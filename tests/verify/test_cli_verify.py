"""The ``repro verify`` CLI surface: run, lint, list."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_verify_list_names_everything(capsys):
    assert main(["verify", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("signtest", "engine", "wheel", "parallel", "chain-rng"):
        assert name in out
    for name in ("suspension-timer", "regulator"):
        assert name in out
    for rule in ("wall-clock", "unseeded-rng", "hash-order"):
        assert rule in out


def test_verify_lint_clean_on_shipped_tree(capsys):
    assert main(["verify", "lint"]) == 0
    assert "lint clean" in capsys.readouterr().out


def test_verify_lint_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nx = time.time()\n", encoding="utf-8")
    assert main(["verify", "lint", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "wall-clock" in captured.out
    assert "1 determinism finding" in captured.err


def test_verify_run_single_seed(capsys):
    assert main(["verify", "run", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "verification ok" in out
    assert "oracle signtest" in out
    assert "invariants regulator" in out


def test_verify_run_json_output(capsys):
    assert main(["verify", "run", "--seeds", "1", "--json"]) == 0
    stdout = capsys.readouterr().out
    payload = json.loads(stdout[stdout.index("{"):])
    assert payload["ok"] is True
    assert payload["seeds"] == [1]
    assert payload["total_cases"] > 0
    assert {entry["oracle"] for entry in payload["oracles"]} == {
        "signtest",
        "engine",
        "wheel",
        "parallel",
        "chain-rng",
    }
    assert all(entry["mismatches"] == [] for entry in payload["oracles"])
    assert all(entry["violations"] == [] for entry in payload["drives"])


def test_verify_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["verify"])
