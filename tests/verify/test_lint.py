"""Determinism lint: clean on the shipped tree, loud on a known-bad fixture."""

from __future__ import annotations

import textwrap

import pytest

from repro.verify.lint import (
    RULES,
    default_lint_paths,
    lint_paths,
    lint_source,
)

# A fixture holding one specimen of every hazard class the lint covers.
_KNOWN_BAD = textwrap.dedent(
    """\
    import os
    import random
    import secrets
    import time
    import uuid
    from datetime import datetime

    def hazards():
        a = time.time()
        b = time.monotonic()
        c = datetime.now()
        d = random.random()
        e = random.Random()
        f = os.urandom(8)
        g = uuid.uuid4()
        h = secrets.token_bytes(4)
        i = hash("payload")
        for item in {1, 2, 3}:
            print(item)
        j = list({4, 5, 6})
        return a, b, c, d, e, f, g, h, i, j

    class PerEventState:
        def __init__(self):
            self.value = 0
    """
)


def _rules_in(findings):
    return {f.rule for f in findings}


def test_known_bad_fixture_trips_every_rule():
    findings = lint_source(_KNOWN_BAD, path="fixture.py")
    assert _rules_in(findings) == set(RULES)
    # One finding per hazard line: 8 calls + hash + for-set + list-set +
    # the slot-less class.
    assert len(findings) == 12


def test_shipped_core_and_simos_are_clean():
    assert lint_paths() == []


def test_default_paths_cover_core_and_simos():
    names = {p.name for p in default_lint_paths()}
    assert names == {"core", "simos"}


def test_seeded_rng_and_sanctioned_calls_pass():
    clean = textwrap.dedent(
        """\
        import random
        import time

        def fine(seed):
            rng = random.Random(seed)
            time.sleep(0.1)  # delaying is not measuring
            ordered = sorted({3, 1, 2})  # order-insensitive consumer
            return rng.random(), ordered
        """
    )
    assert lint_source(clean) == []


def test_rng_method_calls_on_instances_are_not_flagged():
    source = textwrap.dedent(
        """\
        import random

        def fine(rng: random.Random):
            return rng.random() + rng.uniform(0.0, 1.0)
        """
    )
    assert lint_source(source) == []


def test_allow_marker_suppresses_matching_rule():
    source = "import time\nx = time.monotonic()  # verify: allow-wall-clock\n"
    assert lint_source(source) == []


def test_allow_marker_is_rule_specific():
    source = "import time\nx = time.monotonic()  # verify: allow-unseeded-rng\n"
    findings = lint_source(source)
    assert [f.rule for f in findings] == ["wall-clock"]


def test_bare_allow_marker_suppresses_everything():
    source = "import random\nx = random.random()  # verify: allow\n"
    assert lint_source(source) == []


def test_import_aliases_are_resolved():
    source = "import time as t\nx = t.perf_counter()\n"
    findings = lint_source(source)
    assert [f.rule for f in findings] == ["wall-clock"]


def test_from_imports_are_resolved():
    source = "from random import choice\nx = choice([1, 2])\n"
    findings = lint_source(source)
    assert [f.rule for f in findings] == ["unseeded-rng"]


def test_lint_paths_accepts_single_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nx = time.time()\n", encoding="utf-8")
    findings = lint_paths([bad])
    assert len(findings) == 1
    assert findings[0].path == str(bad)
    assert findings[0].line == 2


def test_findings_carry_location_and_message():
    findings = lint_source(_KNOWN_BAD, path="fixture.py")
    first = findings[0]
    assert first.path == "fixture.py"
    assert first.line > 0
    assert first.message


def test_syntax_error_propagates():
    with pytest.raises(SyntaxError):
        lint_source("def broken(:\n")


# -- the slots rule ----------------------------------------------------------


def test_slotless_class_is_flagged():
    source = "class Hot:\n    def __init__(self):\n        self.x = 1\n"
    findings = lint_source(source)
    assert [f.rule for f in findings] == ["slots"]
    assert "Hot" in findings[0].message


def test_slots_assignment_satisfies_rule():
    source = 'class Hot:\n    __slots__ = ("x",)\n'
    assert lint_source(source) == []


def test_annotated_slots_assignment_satisfies_rule():
    source = 'class Hot:\n    __slots__: tuple = ("x",)\n'
    assert lint_source(source) == []


def test_dataclass_slots_true_satisfies_rule():
    source = textwrap.dedent(
        """\
        from dataclasses import dataclass

        @dataclass(frozen=True, slots=True)
        class Sample:
            value: float
        """
    )
    assert lint_source(source) == []


def test_plain_dataclass_is_flagged():
    source = textwrap.dedent(
        """\
        from dataclasses import dataclass

        @dataclass
        class Sample:
            value: float
        """
    )
    assert [f.rule for f in lint_source(source)] == ["slots"]


def test_enum_exception_protocol_are_exempt():
    source = textwrap.dedent(
        """\
        import enum
        from typing import Protocol

        class Mode(enum.Enum):
            A = "a"

        class BoomError(Exception):
            pass

        class Sink(Protocol):
            def emit(self, event) -> None: ...
        """
    )
    assert lint_source(source) == []


def test_allow_slots_marker_in_class_body_waives():
    source = textwrap.dedent(
        """\
        class Shadowed:
            # verify: allow-slots (monitor shadows methods via instance dict)
            def __init__(self):
                self.x = 1
        """
    )
    assert lint_source(source) == []


def test_allow_marker_with_justification_suffix_parses():
    source = (
        "import time\n"
        "x = time.monotonic()  # verify: allow-wall-clock (adapter's whole job)\n"
    )
    assert lint_source(source) == []
