"""Invariant monitors: silent on correct components, loud on broken ones."""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.controller import ThreadRegulator
from repro.core.suspension import SuspensionTimer
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.sinks import MemorySink
from repro.simos.engine import Engine
from repro.verify.harness import (
    INVARIANT_DRIVES,
    _drive_engine,
    _drive_regulator,
    _drive_suspension_timer,
)
from repro.verify.invariants import (
    EngineInvariantMonitor,
    RegulatorInvariantMonitor,
    SuspensionInvariantMonitor,
    VerificationError,
    ViolationRecorder,
    check_regulator_roundtrip,
)


@pytest.mark.parametrize("drive", sorted(INVARIANT_DRIVES))
@pytest.mark.parametrize("seed", [1, 2])
def test_drives_clean_on_real_components(drive, seed):
    result = INVARIANT_DRIVES[drive](seed)
    assert result.ok, result.violations[:3]
    assert result.checks > 0


def test_suspension_monitor_passes_through_saturation():
    recorder = ViolationRecorder(mode="raise")
    monitor = SuspensionInvariantMonitor(
        SuspensionTimer(initial=1.0, maximum=8.0), recorder
    )
    imposed = [monitor.on_poor() for _ in range(6)]
    assert imposed == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]
    assert monitor.saturated
    monitor.on_good()
    assert monitor.current == 1.0 and monitor.consecutive_poor == 0
    assert recorder.ok


class _OvershootingTimer(SuspensionTimer):
    """Broken: keeps doubling straight past its cap."""

    def on_poor(self):
        self._consecutive_poor += 1
        self._current = self._current * 2.0
        return self._current


class _StickyTimer(SuspensionTimer):
    """Broken: GOOD resets the backoff but forgets the poor count."""

    def on_good(self):
        self._current = self.initial


def test_suspension_monitor_detects_cap_overshoot():
    recorder = ViolationRecorder(mode="record")
    monitor = SuspensionInvariantMonitor(
        _OvershootingTimer(initial=1.0, maximum=4.0), recorder
    )
    for _ in range(5):
        monitor.on_poor()
    assert any(v.invariant == "cap_overshoot" for v in recorder.violations)


def test_suspension_monitor_detects_sticky_reset():
    recorder = ViolationRecorder(mode="record")
    monitor = SuspensionInvariantMonitor(
        _StickyTimer(initial=1.0, maximum=4.0), recorder
    )
    monitor.on_poor()
    monitor.on_good()
    assert any(v.invariant == "reset" for v in recorder.violations)


def test_recorder_raise_mode_raises_verification_error():
    recorder = ViolationRecorder(mode="raise")
    monitor = SuspensionInvariantMonitor(
        _OvershootingTimer(initial=1.0, maximum=4.0), recorder
    )
    # The sabotaged timer imposes the *post*-doubling value, so the very
    # first POOR (k=0 should impose `initial`) already breaks the law.
    with pytest.raises(VerificationError):
        monitor.on_poor()


def test_recorder_rejects_unknown_mode():
    with pytest.raises(ValueError):
        ViolationRecorder(mode="whatever")


def test_recorder_emits_obs_events():
    sink = MemorySink()
    telemetry = Telemetry(sink=sink, metrics=MetricsRegistry())
    recorder = ViolationRecorder(mode="record", telemetry=telemetry)
    recorder.report("engine", "monotone_clock", "clock ran backwards", t=3.5)
    events = sink.of_kind("anomaly")
    assert len(events) == 1
    assert events[0].anomaly == "invariant:monotone_clock"
    assert "engine" in events[0].detail
    assert telemetry.metrics.snapshot()["counters"]["invariant_violations"] == 1


def test_engine_monitor_clean_and_detaches():
    recorder = ViolationRecorder(mode="raise")
    engine = Engine()
    monitor = EngineInvariantMonitor(engine, recorder)
    fired = []
    engine.call_after(1.0, fired.append, 1)
    handle = engine.call_after(2.0, fired.append, 2)
    handle.cancel()
    engine.run(until=5.0)
    assert fired == [1]
    assert recorder.checks > 0
    monitor.detach()
    assert "step" not in engine.__dict__ and "call_at" not in engine.__dict__


def test_engine_monitor_detects_corrupted_pending_counter():
    recorder = ViolationRecorder(mode="record")
    engine = Engine()
    EngineInvariantMonitor(engine, recorder)
    engine.call_after(1.0, lambda: None)
    engine._cancelled -= 1  # simulate an accounting bug (pending reads high)
    engine.run()
    assert any(v.invariant == "pending_count" for v in recorder.violations)


def test_engine_monitor_detects_backward_clock():
    recorder = ViolationRecorder(mode="record")
    engine = Engine()
    monitor = EngineInvariantMonitor(engine, recorder)
    engine.call_after(5.0, lambda: None)
    engine.run()
    engine._now = 1.0  # simulate a clock regression
    engine.call_at(2.0, lambda: None)
    assert any(v.invariant == "monotone_clock" for v in recorder.violations)
    monitor.detach()


def _run_regulated_stream(regulator, steps=60, start=0.0):
    now = start
    progress = 0.0
    for i in range(steps):
        progress += 10.0 + (i % 3)
        decision = regulator.on_testpoint(now, 0, (progress,))
        now += decision.delay + 0.5
    return now


def test_regulator_monitor_clean_on_stock_regulator():
    config = DEFAULT_CONFIG.with_overrides(
        bootstrap_testpoints=4, min_testpoint_interval=0.0
    )
    regulator = ThreadRegulator(config=config, start_time=0.0)
    recorder = ViolationRecorder(mode="raise")
    monitor = RegulatorInvariantMonitor(regulator, recorder, roundtrip_every=8)
    _run_regulated_stream(regulator)
    assert recorder.ok and recorder.checks > 0
    monitor.detach()
    assert "on_testpoint" not in regulator.__dict__
    assert isinstance(regulator._suspension, SuspensionTimer)


def test_regulator_monitor_detects_broken_roundtrip():
    config = DEFAULT_CONFIG.with_overrides(
        bootstrap_testpoints=4, min_testpoint_interval=0.0
    )
    regulator = ThreadRegulator(config=config, start_time=0.0)
    recorder = ViolationRecorder(mode="record")
    RegulatorInvariantMonitor(regulator, recorder)
    now = _run_regulated_stream(regulator)
    # Sabotage the snapshot path: export a suspension beyond the cap.  The
    # clone's import clamps it back into band, so its re-export cannot match
    # the lying snapshot — exactly the drift the fidelity check exists for.
    original = regulator.export_state

    def lying_export(include_runtime=False):
        state = original(include_runtime=include_runtime)
        state["suspension"]["current"] = 1e9
        return state

    regulator.export_state = lying_export
    check_regulator_roundtrip(regulator, recorder, t=now)
    assert any(v.invariant == "roundtrip_fidelity" for v in recorder.violations)


def test_roundtrip_check_faithful_mid_stream():
    config = DEFAULT_CONFIG.with_overrides(
        bootstrap_testpoints=4, min_testpoint_interval=0.0
    )
    regulator = ThreadRegulator(config=config, start_time=0.0)
    now = _run_regulated_stream(regulator, steps=25)
    recorder = ViolationRecorder(mode="record")
    assert check_regulator_roundtrip(regulator, recorder, t=now)
    assert recorder.ok


def test_drive_functions_report_checks():
    for fn in (_drive_suspension_timer, _drive_engine, _drive_regulator):
        result = fn(7)
        assert result.checks > 0
        assert result.ok, result.violations[:3]
