"""Differential oracles: clean on the real code, loud on sabotaged code."""

from __future__ import annotations

import pytest

from repro.core.signtest import SignTest
from repro.simos.engine import Engine
from repro.simos.wheel import WheelEngine
from repro.verify.oracles import (
    chain_rng_oracle,
    engine_oracle,
    parallel_oracle,
    signtest_oracle,
    wheel_oracle,
)
from repro.verify.reference import (
    ReferenceEngine,
    ReferenceWheel,
    reference_good_threshold,
    reference_poor_threshold,
)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_signtest_oracle_clean(seed):
    result = signtest_oracle(seed)
    assert result.ok, result.mismatches[:3]
    assert result.cases > 100


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_engine_oracle_clean(seed):
    result = engine_oracle(seed)
    assert result.ok, result.mismatches[:3]
    assert result.cases > 50


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_wheel_oracle_clean(seed):
    result = wheel_oracle(seed)
    assert result.ok, result.mismatches[:3]
    assert result.cases > 50


def test_parallel_oracle_clean():
    result = parallel_oracle(1)
    assert result.ok, result.mismatches


@pytest.mark.parametrize("seed", [1, 2])
def test_chain_rng_oracle_clean(seed):
    result = chain_rng_oracle(seed)
    assert result.ok, result.mismatches


def test_reference_thresholds_match_known_values():
    # n=10, alpha=0.05: P[X >= 9] = 11/1024 ≈ 0.0107 <= 0.05 but
    # P[X >= 8] = 56/1024 ≈ 0.0547 > 0.05, so the poor threshold is 9.
    assert reference_poor_threshold(10, 0.05) == 9
    # The fair-coin statistic is symmetric: the good threshold mirrors
    # it at n - 9 = 1.
    assert reference_good_threshold(10, 0.05) == 1
    # No decidable region at n = 0: both sentinels.
    assert reference_poor_threshold(0, 0.05) == 1  # n+1 == "impossible"
    assert reference_good_threshold(0, 0.05) == -1


class _BrokenSignTest(SignTest):
    """Sabotage: drops every 50th sample on the floor."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._seen = 0

    def add_sample(self, below):
        self._seen += 1
        if self._seen % 50 == 0:
            return None
        return super().add_sample(below)


def test_signtest_oracle_detects_sabotage():
    result = signtest_oracle(1, make_test=_BrokenSignTest)
    assert not result.ok
    assert any("verdict" in m.case or "window" in m.case for m in result.mismatches)


class _DriftingEngine(Engine):
    """Sabotage: the clock silently drifts ahead on every step."""

    def step(self):
        fired = super().step()
        self._now += 0.001
        return fired


def test_engine_oracle_detects_sabotage():
    result = engine_oracle(1, make_engine=_DriftingEngine)
    assert not result.ok


class _MisplacingWheel(WheelEngine):
    """Sabotage: beyond-L0-horizon posts land one tick late."""

    def post_after(self, delay, fn, *args):
        if delay > 2.0:
            delay += 1.0 / 128.0
        super().post_after(delay, fn, *args)


class _LossyWheel(WheelEngine):
    """Sabotage: silently drops every 13th cancellable schedule."""

    def __init__(self):
        super().__init__()
        self._count = 0

    def call_after(self, delay, fn, *args):
        self._count += 1
        if self._count % 13 == 0:
            # Still hand back a handle, as the real engine would.
            handle = super().call_after(delay, lambda: None)
            handle.cancel()
            return handle
        return super().call_after(delay, fn, *args)


@pytest.mark.parametrize("broken", [_MisplacingWheel, _LossyWheel])
def test_wheel_oracle_detects_sabotage(broken):
    assert any(not wheel_oracle(seed, make_engine=broken).ok for seed in (1, 2, 3))


def test_parallel_oracle_is_deterministic_across_runs():
    first = parallel_oracle(2)
    second = parallel_oracle(2)
    assert first.ok and second.ok
    assert first.cases == second.cases


def test_reference_engine_matches_contract_directly():
    fast, ref = Engine(), ReferenceEngine()
    for engine in (fast, ref, WheelEngine(), ReferenceWheel()):
        fired = []
        engine.call_after(1.0, fired.append, "a")
        handle = engine.call_after(2.0, fired.append, "b")
        engine.call_after(3.0, fired.append, "c")
        handle.cancel()
        engine.run(until=5.0)
        assert fired == ["a", "c"]
        assert engine.now == 5.0
        assert engine.pending == 0
