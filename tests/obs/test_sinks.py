"""Event sinks: memory recording, JSONL round-trips, and failure isolation."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.obs import events as obs_events
from repro.obs.report import read_events
from repro.obs.sinks import FanoutSink, JsonlSink, MemorySink, NullSink
from repro.obs.telemetry import Telemetry

from .test_events import SAMPLE_EVENTS


class _BoomSink:
    """A sink whose emit always raises (and whose close raises too)."""

    def __init__(self):
        self.attempts = 0

    def emit(self, event):
        self.attempts += 1
        raise RuntimeError("boom")

    def close(self):
        raise RuntimeError("close boom")


class TestNullSink:
    def test_swallows_and_closes(self):
        sink = NullSink()
        sink.emit(obs_events.PhaseTransition(t=0.0, phase="bootstrap"))
        sink.close()


class TestMemorySink:
    def test_records_in_order(self):
        sink = MemorySink()
        for event in SAMPLE_EVENTS:
            sink.emit(event)
        assert sink.events == SAMPLE_EVENTS
        assert sink.kinds() == [e.kind for e in SAMPLE_EVENTS]

    def test_of_kind_filters(self):
        sink = MemorySink()
        for event in SAMPLE_EVENTS:
            sink.emit(event)
        judgments = sink.of_kind("judgment")
        assert len(judgments) == 1
        assert judgments[0].judgment == "good"


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLE_EVENTS:
                sink.emit(event)
        assert read_events(path) == SAMPLE_EVENTS

    def test_lines_are_self_describing_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(SAMPLE_EVENTS[0])
        (line,) = path.read_text().splitlines()
        data = json.loads(line)
        assert data["k"] == "testpoint"
        assert data["v"] == 1

    def test_emit_after_close_counts_errors_not_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()  # idempotent
        sink.emit(SAMPLE_EVENTS[0])
        assert sink.write_errors == 1

    def test_unserializable_event_counted_not_raised(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        # A judgment carrying a non-JSON value must not take down the run.
        bad = obs_events.JudgmentIssued(t=0.0, judgment=object())  # type: ignore[arg-type]
        sink.emit(bad)
        sink.close()
        assert sink.write_errors == 1


class TestFanoutSink:
    def test_duplicates_to_all_children(self):
        a, b = MemorySink(), MemorySink()
        fanout = FanoutSink(a, b)
        for event in SAMPLE_EVENTS[:3]:
            fanout.emit(event)
        assert a.events == SAMPLE_EVENTS[:3]
        assert b.events == SAMPLE_EVENTS[:3]

    def test_failing_child_isolated_others_keep_flowing(self):
        memory, boom = MemorySink(), _BoomSink()
        fanout = FanoutSink(memory, boom, max_failures=3)
        with pytest.warns(RuntimeWarning, match="disabled"):
            for event in SAMPLE_EVENTS[:5]:
                fanout.emit(event)
        # The healthy child saw everything; the broken one was cut off
        # after exactly max_failures attempts.
        assert memory.events == SAMPLE_EVENTS[:5]
        assert boom.attempts == 3
        assert fanout.failures == [0, 3]
        assert fanout.enabled(0)
        assert not fanout.enabled(1)
        assert fanout.disabled_sinks == (boom,)

    def test_warns_exactly_once(self):
        fanout = FanoutSink(_BoomSink(), max_failures=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for event in SAMPLE_EVENTS[:4]:
                fanout.emit(event)
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1

    def test_no_warning_below_limit(self):
        fanout = FanoutSink(_BoomSink(), max_failures=5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fanout.emit(SAMPLE_EVENTS[0])
        assert fanout.enabled(0)
        assert fanout.failures == [1]

    def test_max_failures_domain(self):
        with pytest.raises(ValueError):
            FanoutSink(MemorySink(), max_failures=0)

    def test_close_swallows_child_errors(self):
        fanout = FanoutSink(_BoomSink(), MemorySink())
        fanout.close()  # must not raise


class TestTelemetrySinkIsolation:
    def test_sink_disabled_after_limit(self):
        boom = _BoomSink()
        with pytest.warns(RuntimeWarning, match="disabled"):
            tel = Telemetry(sink=boom)
            for event in SAMPLE_EVENTS[:5]:
                tel.emit(event)
        assert tel.sink_disabled
        assert tel.sink_failures == 3
        # Once disabled the sink is never called again.
        assert boom.attempts == 3
        assert not tel.emitting
        assert tel.metrics.counter("sink_failures").value == 3
        assert tel.metrics.counter("sink_disabled").value == 1

    def test_failures_shared_across_scoped_children(self):
        boom = _BoomSink()
        tel = Telemetry(sink=boom)
        child = tel.scoped("thread-1")
        with pytest.warns(RuntimeWarning):
            tel.emit(SAMPLE_EVENTS[0])
            child.emit(SAMPLE_EVENTS[1])
            child.emit(SAMPLE_EVENTS[2])
        # Child failures count toward the one shared root limit.
        assert tel.sink_disabled
        assert child.sink_disabled
        assert tel.sink_failures == 3

    def test_healthy_sink_never_disabled(self):
        memory = MemorySink()
        tel = Telemetry(sink=memory)
        for event in SAMPLE_EVENTS:
            tel.emit(event)
        assert not tel.sink_disabled
        assert tel.sink_failures == 0
        assert memory.events == SAMPLE_EVENTS
