"""Event sinks: memory recording, JSONL round-trips, and failure isolation."""

from __future__ import annotations

import json

from repro.obs import events as obs_events
from repro.obs.report import read_events
from repro.obs.sinks import JsonlSink, MemorySink, NullSink

from .test_events import SAMPLE_EVENTS


class TestNullSink:
    def test_swallows_and_closes(self):
        sink = NullSink()
        sink.emit(obs_events.PhaseTransition(t=0.0, phase="bootstrap"))
        sink.close()


class TestMemorySink:
    def test_records_in_order(self):
        sink = MemorySink()
        for event in SAMPLE_EVENTS:
            sink.emit(event)
        assert sink.events == SAMPLE_EVENTS
        assert sink.kinds() == [e.kind for e in SAMPLE_EVENTS]

    def test_of_kind_filters(self):
        sink = MemorySink()
        for event in SAMPLE_EVENTS:
            sink.emit(event)
        judgments = sink.of_kind("judgment")
        assert len(judgments) == 1
        assert judgments[0].judgment == "good"


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLE_EVENTS:
                sink.emit(event)
        assert read_events(path) == SAMPLE_EVENTS

    def test_lines_are_self_describing_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(SAMPLE_EVENTS[0])
        (line,) = path.read_text().splitlines()
        data = json.loads(line)
        assert data["k"] == "testpoint"
        assert data["v"] == 1

    def test_emit_after_close_counts_errors_not_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()  # idempotent
        sink.emit(SAMPLE_EVENTS[0])
        assert sink.write_errors == 1

    def test_unserializable_event_counted_not_raised(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        # A judgment carrying a non-JSON value must not take down the run.
        bad = obs_events.JudgmentIssued(t=0.0, judgment=object())  # type: ignore[arg-type]
        sink.emit(bad)
        sink.close()
        assert sink.write_errors == 1
