"""Flight recorder: ring bounds, auto-triggers, and crash-mid-batch flushes.

Satellite contract: a crash injected mid-batch must still deliver every
buffered event to the flight recorder, in emission order, before the dump
snapshots — the batched-telemetry ordering guarantees survive faults.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.scenarios import _chaos_config, _hog, _worker
from repro.obs import events as obs_events
from repro.obs.flightrec import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.report import read_events
from repro.obs.sinks import FanoutSink, MemorySink
from repro.obs.telemetry import Telemetry
from repro.obs.trace2 import Tracer, spans_of
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import SimManners


def _event(t: float) -> obs_events.JudgmentIssued:
    return obs_events.JudgmentIssued(t=t, src="w", judgment="poor", samples=5)


def _fault(t: float) -> obs_events.FaultInjected:
    return obs_events.FaultInjected(t=t, src="faults", fault="crash", target="w")


class TestRing:
    def test_keeps_only_the_last_capacity_events(self):
        rec = FlightRecorder(capacity=4, auto_trigger=False)
        for i in range(10):
            rec.emit(_event(float(i)))
        rec.dump("manual", t=10.0)
        header, events = rec.last_dump
        assert [e.t for e in events] == [6.0, 7.0, 8.0, 9.0]
        assert header.captured == 4
        assert header.dropped == 6
        assert rec.dropped == 6

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY


class TestAutoTrigger:
    def test_fault_injected_dumps(self):
        rec = FlightRecorder(capacity=8)
        rec.emit(_event(1.0))
        rec.emit(_fault(2.0))
        header, events = rec.last_dump
        assert header.reason == "fault-crash"
        assert [e.t for e in events] == [1.0, 2.0]  # trigger included, in order

    def test_invariant_violation_dumps(self):
        rec = FlightRecorder(capacity=8)
        rec.emit(
            obs_events.AnomalyDetected(
                t=3.0, src="w", anomaly="invariant:backoff_doubling"
            )
        )
        assert rec.last_dump[0].reason == "invariant-backoff_doubling"

    def test_plain_anomaly_does_not_dump(self):
        rec = FlightRecorder(capacity=8)
        rec.emit(obs_events.AnomalyDetected(t=3.0, src="w", anomaly="clock_backward"))
        assert rec.last_dump is None

    def test_crash_recovery_dumps(self):
        rec = FlightRecorder(capacity=8)
        rec.emit(obs_events.RecoveryAction(t=4.0, src="p", action="slot_released"))
        assert rec.last_dump[0].reason == "crash"

    def test_other_recovery_does_not_dump(self):
        rec = FlightRecorder(capacity=8)
        rec.emit(obs_events.RecoveryAction(t=4.0, src="p", action="quarantine"))
        assert rec.last_dump is None

    def test_auto_trigger_can_be_disarmed(self):
        rec = FlightRecorder(capacity=8, auto_trigger=False)
        rec.emit(_fault(1.0))
        assert rec.last_dump is None


class TestDumpFiles:
    def test_dump_file_is_a_readable_trace(self, tmp_path):
        rec = FlightRecorder(capacity=8, dump_dir=tmp_path)
        rec.emit(_event(1.0))
        rec.emit(_fault(2.0))
        assert len(rec.dump_paths) == 1
        events = read_events(rec.dump_paths[0])
        header = events[0]
        assert isinstance(header, obs_events.FlightRecorderDump)
        assert header.reason == "fault-crash"
        assert [e.t for e in events[1:]] == [1.0, 2.0]

    def test_file_names_are_deterministic_and_sequenced(self, tmp_path):
        rec = FlightRecorder(capacity=8, dump_dir=tmp_path)
        rec.emit(_fault(1.0))
        rec.emit(_fault(2.0))
        names = [p.rsplit("/", 1)[-1] for p in rec.dump_paths]
        assert names == [
            "flightrec-0001-fault-crash.jsonl",
            "flightrec-0002-fault-crash.jsonl",
        ]

    def test_write_failure_is_absorbed(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("")
        rec = FlightRecorder(capacity=8, dump_dir=blocked / "sub")
        rec.emit(_fault(1.0))  # must not raise
        assert rec.dump_paths == []
        assert len(rec.dumps) == 1  # the in-memory snapshot is still taken


class TestTelemetryIntegration:
    def test_telemetry_tees_recorder_next_to_primary_sink(self):
        memory = MemorySink()
        rec = FlightRecorder(capacity=16)
        tel = Telemetry(sink=memory, flight_recorder=rec)
        assert isinstance(tel.sink, FanoutSink)
        tel.emit(_event(1.0))
        assert memory.events == [_event(1.0)]

    def test_recorder_alone_makes_telemetry_emitting(self):
        tel = Telemetry(flight_recorder=FlightRecorder(capacity=16))
        assert tel.emitting

    def test_flight_dump_flushes_then_snapshots(self):
        rec = FlightRecorder(capacity=16)
        tel = Telemetry(
            sink=MemorySink(), flight_recorder=rec, batch_interval=1e9
        )
        tel.emit(_event(1.0))
        tel.emit(_event(2.0))
        assert rec.last_dump is None  # still buffered upstream
        assert tel.flight_dump("manual") is None  # no dump_dir -> no path
        header, events = rec.last_dump
        assert header.reason == "manual"
        assert [e.t for e in events] == [1.0, 2.0]

    def test_flight_dump_without_recorder_is_noop(self):
        tel = Telemetry(sink=MemorySink())
        assert tel.flight_dump("manual") is None


class TestCrashMidBatch:
    """Satellite: batching + fault injection + flight recorder."""

    def _crashed_run(self, rec: FlightRecorder, batch_interval: float = 1e9):
        """Crash a regulated worker with every event still in the batch buffer."""
        memory = MemorySink()
        tel = Telemetry(
            sink=FanoutSink(memory, rec),
            label="run",
            tracer=Tracer(),
            batch_interval=batch_interval,
        )
        kernel = Kernel(seed=7)
        kernel.add_disk("C")
        manners = SimManners(kernel, _chaos_config(), telemetry=tel)
        w1 = kernel.spawn("w1", _worker(3000), process="li")
        manners.regulate(w1)
        kernel.spawn("hog", _hog(5.0, 2000), process="hog")
        injector = FaultInjector(kernel, telemetry=tel)
        injector.register_thread(w1)
        kernel.engine.call_at(20.0, injector.inject, "crash", "w1")
        kernel.run(until=60.0)
        return memory, tel

    def test_crash_mid_batch_still_reaches_the_recorder_in_order(self):
        rec = FlightRecorder(capacity=100_000)
        memory, tel = self._crashed_run(rec)
        # The huge batch interval means nothing would have reached any sink
        # before t=20; the injector's fault-time flush delivered the entire
        # buffered history — regulation spans included — before the dump.
        assert rec.dumps
        fault_dump = next(d for d in rec.dumps if d[0].reason == "fault-crash")
        _, captured = fault_dump
        assert captured[-1].kind == "fault"
        assert spans_of(captured)  # the causal history came with it
        # Order preserved: the dump is a prefix of the full delivered trace.
        tel.close()
        assert list(captured) == memory.events[: len(captured)]

    def test_dump_tail_matches_direct_delivery(self):
        # Same run, unbatched: the recorder sees the same prefix at the
        # fault, so batching is invisible to the post-mortem artifact.
        batched_rec = FlightRecorder(capacity=512)
        self._crashed_run(batched_rec)
        direct_rec = FlightRecorder(capacity=512)
        self._crashed_run(direct_rec, batch_interval=None)
        batched = next(d for d in batched_rec.dumps if d[0].reason == "fault-crash")
        direct = next(d for d in direct_rec.dumps if d[0].reason == "fault-crash")
        assert batched[1] == direct[1]
