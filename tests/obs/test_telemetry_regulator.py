"""Telemetry through the regulation stack: event order, determinism, purity."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.controller import ThreadRegulator
from repro.core.signtest import Judgment
from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry

#: A small, fast configuration for scripted episodes.
EPISODE_CONFIG = DEFAULT_CONFIG.with_overrides(
    bootstrap_testpoints=2,
    min_testpoint_interval=0.0,
    probation_period=0.0,
    initial_suspension=1.0,
    max_suspension=8.0,
    averaging_n=400,
    hung_threshold=1000.0,
)


def run_episode(telemetry: Telemetry | None):
    """Scripted episode: bootstrap -> good -> poor/backoff -> good/reset.

    Drives one ThreadRegulator through constant-rate progress (good), then
    4x-slow progress (poor, exponential backoff), then back to the original
    rate (good again, backoff reset).  Returns the decision list.
    """
    regulator = ThreadRegulator(EPISODE_CONFIG, telemetry=telemetry)
    decisions = []
    state = {"now": 0.0, "count": 0.0}

    def step(duration: float):
        state["now"] += duration
        state["count"] += 10.0
        decision = regulator.on_testpoint(state["now"], 0, [state["count"]])
        decisions.append(decision)
        state["now"] += decision.delay  # serve the mandated suspension
        return decision

    step(0.0)  # priming testpoint
    for _ in range(7):  # bootstrap + warm-up: calibrate at 10 units/s
        step(1.0)
    for _ in range(40):  # progressing above target -> GOOD
        if step(0.8).judgment is Judgment.GOOD:
            break
    poor = 0
    for _ in range(40):  # contention: 4x the calibrated duration -> POOR
        if step(4.0).judgment is Judgment.POOR:
            poor += 1
            if poor >= 2:  # at least two backoff levels
                break
    for _ in range(40):  # contention clears -> GOOD, backoff reset
        if step(0.8).judgment is Judgment.GOOD:
            break
    return decisions


class TestEventOrder:
    @pytest.fixture(scope="class")
    def episode(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, metrics=MetricsRegistry())
        decisions = run_episode(telemetry)
        return sink, telemetry, decisions

    def test_phases_open_the_stream(self, episode):
        sink, _, _ = episode
        phases = [e.phase for e in sink.of_kind("phase")]
        assert phases[:2] == ["bootstrap", "regulating"]

    def test_good_then_poor_then_reset(self, episode):
        sink, _, _ = episode
        kinds = sink.kinds()
        first_good = next(
            i for i, e in enumerate(sink.events)
            if e.kind == "judgment" and e.judgment == "good"
        )
        first_poor = next(
            i for i, e in enumerate(sink.events)
            if e.kind == "judgment" and e.judgment == "poor"
        )
        first_suspend = kinds.index("suspension_started")
        first_reset = kinds.index("backoff_reset")
        assert first_good < first_poor < first_reset
        # The suspension is imposed by the first POOR judgment.
        assert first_suspend == first_poor + 1

    def test_backoff_levels_escalate_then_reset(self, episode):
        sink, _, _ = episode
        suspensions = sink.of_kind("suspension_started")
        assert len(suspensions) >= 2
        assert suspensions[0].level == 0
        assert suspensions[0].delay == pytest.approx(1.0)
        assert suspensions[1].level == 1
        assert suspensions[1].delay == pytest.approx(2.0)
        (reset,) = sink.of_kind("backoff_reset")
        assert reset.from_level == len(suspensions)

    def test_every_processed_testpoint_emits_one_event(self, episode):
        sink, _, decisions = episode
        processed = [d for d in decisions if d.processed]
        testpoints = sink.of_kind("testpoint")
        assert len(testpoints) == len(processed) - 1  # priming emits none
        # Event fields mirror the decision the caller saw.
        for event, decision in zip(testpoints, processed[1:]):
            assert event.duration == pytest.approx(decision.duration)
            assert event.delay == pytest.approx(decision.delay)
            expected = None if decision.judgment is None else decision.judgment.value
            assert event.judgment == expected

    def test_timestamps_are_monotone(self, episode):
        sink, _, _ = episode
        times = [e.t for e in sink.events]
        assert times == sorted(times)

    def test_events_carry_no_src_by_default(self, episode):
        # Unscoped telemetry: src stays "" (scoping is the substrate's job).
        sink, _, _ = episode
        assert {e.src for e in sink.events} == {""}


class TestMetrics:
    def test_counters_match_decisions(self):
        telemetry = Telemetry(sink=MemorySink(), metrics=MetricsRegistry())
        decisions = run_episode(telemetry)
        snap = telemetry.metrics.snapshot()
        counters = snap["counters"]
        assert counters["testpoints"] == len(decisions)
        assert counters["testpoints_processed"] == sum(
            1 for d in decisions if d.processed
        )
        assert counters["judgments_poor"] == sum(
            1 for d in decisions if d.judgment is Judgment.POOR
        )
        assert counters["judgments_good"] == sum(
            1 for d in decisions if d.judgment is Judgment.GOOD
        )
        assert counters["suspensions"] == sum(1 for d in decisions if d.delay > 0)
        assert counters["suspension_seconds"] == pytest.approx(
            sum(d.delay for d in decisions)
        )
        assert counters["execution_seconds"] == pytest.approx(
            sum(d.duration for d in decisions if d.processed)
        )

    def test_duty_cycle_derived(self):
        telemetry = Telemetry(sink=MemorySink(), metrics=MetricsRegistry())
        decisions = run_episode(telemetry)
        executed = sum(d.duration for d in decisions if d.processed)
        suspended = sum(d.delay for d in decisions)
        snap = telemetry.metrics.snapshot()
        assert snap["derived"]["duty_cycle"] == pytest.approx(
            executed / (executed + suspended)
        )

    def test_suspension_histogram(self):
        telemetry = Telemetry(sink=MemorySink(), metrics=MetricsRegistry())
        decisions = run_episode(telemetry)
        hist = telemetry.metrics.histogram("suspension_delay")
        assert hist.count == sum(1 for d in decisions if d.delay > 0)
        assert hist.max == max(d.delay for d in decisions)


class TestEmittingFlag:
    def test_null_sink_disables_event_construction(self):
        from repro.obs.sinks import NullSink

        telemetry = Telemetry(sink=NullSink(), metrics=MetricsRegistry())
        assert telemetry.emitting is False
        assert telemetry.scoped("child").emitting is False
        # Metrics still accumulate on the null-sink path.
        decisions = run_episode(telemetry)
        assert telemetry.metrics.counter("testpoints").value == len(decisions)

    def test_memory_sink_keeps_events(self):
        telemetry = Telemetry(sink=MemorySink(), metrics=MetricsRegistry())
        assert telemetry.emitting is True
        assert telemetry.scoped("child").emitting is True

    def test_decisions_identical_across_sinks(self):
        from repro.obs.sinks import NullSink

        with_null = run_episode(Telemetry(sink=NullSink(), metrics=MetricsRegistry()))
        with_memory = run_episode(Telemetry(sink=MemorySink(), metrics=MetricsRegistry()))
        assert with_null == with_memory


class TestDisabledPath:
    def test_decisions_identical_with_and_without_telemetry(self):
        without = run_episode(None)
        with_tel = run_episode(Telemetry(sink=MemorySink(), metrics=MetricsRegistry()))
        assert without == with_tel

    def test_null_path_constructs_no_event_objects(self, monkeypatch):
        """telemetry=None must never even *allocate* an event.

        Emit sites reference event classes as ``obs_events.ClassName``
        attributes, so replacing every class in the module with a bomb
        proves the disabled path never reaches a constructor.
        """

        def bomb(*args, **kwargs):
            raise AssertionError("event constructed on the telemetry=None path")

        event_base = obs_events.Event
        for name, cls in list(vars(obs_events).items()):
            if isinstance(cls, type) and issubclass(cls, event_base):
                monkeypatch.setattr(obs_events, name, bomb)
        decisions = run_episode(None)
        assert any(d.judgment is Judgment.POOR for d in decisions)

    def test_telemetry_never_leaks_into_decision(self):
        telemetry = Telemetry(sink=MemorySink(), metrics=MetricsRegistry())
        for decision in run_episode(telemetry):
            for field in dataclasses.fields(decision):
                assert "telemetry" not in field.name
