"""Batched telemetry must be invisible except for *when* the sink is called.

The contract (src/repro/obs/telemetry.py): buffering preserves emission
order exactly, flushes happen on tick-boundary crossings / a full buffer /
``flush()``/``close()``, and every downstream consumer — event counts,
ordering, ``repro obs summarize`` — sees bit-identical output batched vs
unbatched.  Fault traces are the acid test: a crash-recovery event emitted
just before shutdown must still reach the sink.
"""

from __future__ import annotations

import warnings

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.scenarios import _chaos_config, _hog, _worker
from repro.faults.stores import FlakySink
from repro.obs import events as obs_events
from repro.obs.report import summarize_file
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import SimManners

from tests.obs.test_telemetry_regulator import run_episode


def _event(t: float, value: float = 1.0) -> obs_events.AnomalyDetected:
    return obs_events.AnomalyDetected(t=t, src="test", anomaly="x", value=value)


# -- unit behavior -----------------------------------------------------------


class TestBatchingMechanics:
    def test_unbatched_emits_directly(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink)
        tel.emit(_event(0.0))
        assert len(sink.events) == 1

    def test_batched_buffers_until_boundary(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink, batch_interval=5.0)
        tel.tick(1.0)
        tel.emit(_event(1.0))
        tel.emit(_event(2.0))
        assert sink.events == []  # still buffered
        tel.tick(4.9)
        assert sink.events == []  # boundary not crossed yet
        tel.tick(5.0)
        assert len(sink.events) == 2  # crossing flushed, order kept
        assert [e.t for e in sink.events] == [1.0, 2.0]

    def test_flush_boundary_advances_per_interval(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink, batch_interval=5.0)
        tel.tick(5.0)  # flush (empty); next boundary 10.0
        tel.emit(_event(6.0))
        tel.tick(9.0)
        assert sink.events == []
        tel.tick(10.0)
        assert len(sink.events) == 1

    def test_full_buffer_flushes_early(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink, batch_interval=100.0, batch_limit=3)
        for i in range(3):
            tel.emit(_event(float(i)))
        assert len(sink.events) == 3  # limit reached mid-interval

    def test_close_flushes_remaining(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink, batch_interval=100.0)
        tel.emit(_event(0.0))
        assert sink.events == []
        tel.close()
        assert len(sink.events) == 1

    def test_flush_on_unbatched_handle_is_noop(self):
        tel = Telemetry(sink=MemorySink())
        tel.flush()  # must not raise or change state
        tel.close()

    def test_scoped_children_share_the_buffer(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink, batch_interval=5.0)
        child = tel.scoped("w1")
        child.emit(_event(1.0))
        tel.emit(_event(2.0))
        child.tick(5.0)  # a child tick crosses the shared boundary
        assert [e.t for e in sink.events] == [1.0, 2.0]

    def test_batch_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Telemetry(sink=MemorySink(), batch_interval=0.0)
        with pytest.raises(ValueError):
            Telemetry(sink=MemorySink(), batch_interval=-1.0)

    def test_batch_limit_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            Telemetry(sink=MemorySink(), batch_interval=1.0, batch_limit=0)

    def test_flush_isolates_sink_failures(self):
        flaky = FlakySink(fail_after=2)
        tel = Telemetry(sink=flaky, batch_interval=100.0)
        for i in range(8):
            tel.emit(_event(float(i)))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            tel.flush()
        # The first two events landed; the failures were absorbed and the
        # sink disabled after the limit — regulation code never sees this.
        assert flaky.emitted == 2
        assert tel.sink_disabled

    def test_emit_after_disable_is_dropped_silently(self):
        flaky = FlakySink(fail_after=0)
        tel = Telemetry(sink=flaky, batch_interval=100.0)
        for i in range(5):
            tel.emit(_event(float(i)))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            tel.flush()
        assert tel.sink_disabled
        tel.emit(_event(99.0))  # no buffering, no raising
        tel.flush()
        assert flaky.emitted == 0


# -- parity through the regulation stack -------------------------------------


class TestBatchedParity:
    def test_episode_events_identical_batched_vs_unbatched(self):
        direct_sink = MemorySink()
        run_episode(Telemetry(sink=direct_sink))

        batched_sink = MemorySink()
        batched = Telemetry(sink=batched_sink, batch_interval=7.0)
        run_episode(batched)
        batched.close()  # shutdown flush: nothing may be left behind

        assert len(batched_sink.events) == len(direct_sink.events)
        assert batched_sink.events == direct_sink.events  # order and content

    def test_summarize_identical_batched_vs_unbatched(self, tmp_path):
        from repro.obs.sinks import JsonlSink

        direct_path = tmp_path / "direct.jsonl"
        with JsonlSink(direct_path) as sink:
            tel = Telemetry(sink=sink)
            run_episode(tel)
            tel.close()

        batched_path = tmp_path / "batched.jsonl"
        with JsonlSink(batched_path) as sink:
            tel = Telemetry(sink=sink, batch_interval=3.0)
            run_episode(tel)
            tel.close()

        assert direct_path.read_text() == batched_path.read_text()
        assert summarize_file(direct_path) == summarize_file(batched_path)


# -- fault traces under batching ---------------------------------------------


def _crash_run(telemetry: Telemetry, seed: int = 7) -> float:
    """A regulated worker is crashed mid-run; recovery events must surface.

    A second regulated worker keeps testpointing after the crash, so the
    trace has a tail *beyond* the injector's fault-time flush — the part
    only the shutdown flush can deliver.
    """
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    manners = SimManners(kernel, _chaos_config(), telemetry=telemetry)
    w1 = kernel.spawn("w1", _worker(3000), process="li")
    w2 = kernel.spawn("w2", _worker(3000), process="li")
    manners.regulate(w1)
    manners.regulate(w2)
    kernel.spawn("hog", _hog(5.0, 2000), process="hog")
    injector = FaultInjector(kernel, telemetry=telemetry)
    injector.register_thread(w1)
    kernel.engine.call_at(20.0, injector.inject, "crash", "w1")
    return kernel.run(until=60.0)


class TestFaultTraceCompleteness:
    def test_crash_recovery_events_survive_batching(self):
        direct_sink = MemorySink()
        _crash_run(Telemetry(sink=direct_sink))

        batched_sink = MemorySink()
        batched = Telemetry(sink=batched_sink, batch_interval=11.0)
        _crash_run(batched)
        batched.close()  # engine shutdown: the final partial batch flushes

        assert batched_sink.events == direct_sink.events
        # The trace must contain the injection and the recovery, in order.
        assert "fault" in batched_sink.kinds()
        # ... including the crash-specific recovery (the victim's slot was
        # reclaimed when the kill fired), emitted in the same dispatch as
        # the injection itself.
        assert any(
            e.kind == "recovery" and e.action == "slot_released"
            for e in batched_sink.events
        )

    def test_unflushed_crash_events_would_be_lost_without_close(self):
        # Companion guard: the shutdown flush is load-bearing.  With a huge
        # interval and no close(), the post-crash tail of the trace (the
        # injector flushes everything *up to* the fault, but the surviving
        # worker keeps emitting afterwards) sits in the buffer — proving
        # the parity above comes from the flush, not luck.
        sink = MemorySink()
        tel = Telemetry(sink=sink, batch_interval=1e9)
        _crash_run(tel)
        buffered = len(tel._buffer)
        assert buffered > 0
        tel.close()
        assert len(sink.events) >= buffered
