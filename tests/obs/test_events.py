"""Event records: serialization round-trips and schema guards."""

from __future__ import annotations

import pytest

from repro.core.errors import MannersError
from repro.obs import events as obs_events
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    event_from_dict,
    event_to_dict,
)

#: One representative instance of every event type, with non-default fields.
SAMPLE_EVENTS = [
    obs_events.TestpointProcessed(
        t=1.5,
        src="defrag:C",
        set_index=2,
        duration=0.4,
        target_duration=0.3,
        deltas=(10.0, 2.0),
        delay=1.0,
        judgment="poor",
        calibrated=True,
        bootstrap=False,
        probation_delay=0.25,
        off_protocol=False,
        discarded_hung=False,
    ),
    obs_events.JudgmentIssued(t=2.0, src="a", judgment="good", samples=8, below=2),
    obs_events.SuspensionStarted(t=3.0, src="a", delay=2.0, level=1),
    obs_events.SuspensionEnded(t=5.0, src="a", slept=2.0),
    obs_events.BackoffReset(t=6.0, src="a", from_level=3),
    obs_events.CalibrationSample(t=7.0, src="a", set_index=1, duration=0.5, deltas=(3.0,)),
    obs_events.TargetUpdated(
        t=8.0, src="a", set_index=1, sample_count=12, target_rate=9.5, scale=1.1
    ),
    obs_events.PhaseTransition(t=9.0, src="a", phase="regulating"),
    obs_events.SampleDiscarded(t=10.0, src="a", reason="hung", duration=40.0),
    obs_events.SlotGranted(t=11.0, src="p", process="p", thread="t1"),
    obs_events.SlotEvicted(t=12.0, src="p", process="p", thread="t1", idle_for=31.0),
    obs_events.TokenHandoff(t=13.0, src="", process="p", action="acquired"),
    obs_events.BeNicePoll(t=14.0, src="benice:x", interval=0.3, changed=True, delay=0.0),
    obs_events.FaultInjected(
        t=15.0, src="faults", fault="clock_jump", target="clock", param=3600.0
    ),
    obs_events.AnomalyDetected(
        t=16.0, src="a", anomaly="clock_backward", value=5.0, detail="t=16 < t=21"
    ),
    obs_events.RecoveryAction(
        t=17.0, src="a", action="quarantine", detail="app.manners.json.corrupt"
    ),
    obs_events.Span(
        t=18.0,
        src="a",
        span_id=7,
        parent=3,
        links=(4, 5, 6),
        name="judgment",
        attrs={"judgment": "poor", "samples": 3, "below": 2},
    ),
    obs_events.FlightRecorderDump(
        t=19.0, src="flightrec", reason="fault-crash", captured=256, dropped=12
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: e.kind)
    def test_to_dict_from_dict_round_trips(self, event):
        data = event_to_dict(event)
        assert data["k"] == event.kind
        assert data["v"] == EVENT_SCHEMA_VERSION
        assert event_from_dict(data) == event

    def test_every_registered_type_is_covered(self):
        assert {type(e) for e in SAMPLE_EVENTS} == set(EVENT_TYPES.values())

    def test_deltas_serialize_as_list(self):
        data = event_to_dict(SAMPLE_EVENTS[0])
        assert data["deltas"] == [10.0, 2.0]
        assert isinstance(event_from_dict(data).deltas, tuple)

    def test_kinds_are_unique(self):
        assert len(EVENT_TYPES) == len(SAMPLE_EVENTS)


class TestSchemaGuards:
    def test_unknown_version_rejected(self):
        data = event_to_dict(SAMPLE_EVENTS[1])
        data["v"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(MannersError, match="schema version"):
            event_from_dict(data)

    def test_missing_version_rejected(self):
        data = event_to_dict(SAMPLE_EVENTS[1])
        del data["v"]
        with pytest.raises(MannersError, match="schema version"):
            event_from_dict(data)

    def test_unknown_kind_rejected(self):
        data = event_to_dict(SAMPLE_EVENTS[1])
        data["k"] = "no-such-event"
        with pytest.raises(MannersError, match="unknown telemetry event kind"):
            event_from_dict(data)

    def test_missing_optional_field_defaults(self):
        data = event_to_dict(obs_events.SuspensionStarted(t=1.0, delay=2.0, level=1))
        del data["level"]
        event = event_from_dict(data)
        assert event.delay == 2.0
        assert event.level == 0

    def test_events_are_immutable(self):
        with pytest.raises(AttributeError):
            SAMPLE_EVENTS[2].delay = 99.0
