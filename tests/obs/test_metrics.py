"""The metrics registry: instruments and snapshot correctness."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates_and_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("testpoints")
        registry.inc("testpoints")
        registry.counter("testpoints").inc(0.5)
        assert registry.counter("testpoints").value == 2.5

    def test_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="must be >= 0"):
            registry.inc("x", -1.0)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")


class TestGauge:
    def test_last_value_wins(self):
        registry = MetricsRegistry()
        registry.gauge("backoff_level").set(1.0)
        registry.gauge("backoff_level").set(3.0)
        assert registry.gauge("backoff_level").value == 3.0

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge("fresh").value is None


class TestHistogram:
    def test_bucketing_and_stats(self):
        h = Histogram("suspension_delay", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            h.observe(value)
        assert h.count == 4
        assert h.total == pytest.approx(104.5)
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.mean == pytest.approx(104.5 / 4)
        # counts: <=1.0 gets 0.5 and 1.0; <=2.0 none; <=4.0 gets 3.0; +inf gets 100.
        assert h.counts == [2, 0, 1, 1]

    def test_quantiles(self):
        h = Histogram("d", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            h.observe(value)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        assert h.quantile(0.0) is not None
        assert Histogram("empty").quantile(0.5) is None

    def test_overflow_quantile_reports_true_max(self):
        h = Histogram("d", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(1.0) == 50.0

    def test_rejects_empty_buckets_and_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())
        h = Histogram("d")
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestSnapshot:
    def test_snapshot_is_json_safe_and_complete(self):
        registry = MetricsRegistry()
        registry.inc("testpoints", 3)
        registry.gauge("target_rate").set(9.5)
        registry.histogram("suspension_delay", buckets=(1.0, 2.0)).observe(1.5)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["testpoints"] == 3
        assert snap["gauges"]["target_rate"] == 9.5
        hist = snap["histograms"]["suspension_delay"]
        assert hist["count"] == 1
        assert hist["buckets"][-1][0] == "+inf"

    def test_derived_duty_cycle(self):
        registry = MetricsRegistry()
        registry.counter("execution_seconds").inc(3.0)
        registry.counter("suspension_seconds").inc(1.0)
        assert registry.snapshot()["derived"]["duty_cycle"] == pytest.approx(0.75)

    def test_no_duty_cycle_without_standard_counters(self):
        registry = MetricsRegistry()
        registry.inc("testpoints")
        assert "duty_cycle" not in registry.snapshot()["derived"]
