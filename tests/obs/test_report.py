"""The trace summarizer: timeline rendering and file round-trips."""

from __future__ import annotations

import pytest

from repro.core.errors import MannersError
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import read_events, summarize, summarize_file
from repro.obs.sinks import JsonlSink, MemorySink
from repro.obs.telemetry import Telemetry

from .test_events import SAMPLE_EVENTS
from .test_telemetry_regulator import run_episode


@pytest.fixture(scope="module")
def episode_events():
    sink = MemorySink()
    run_episode(Telemetry(sink=sink, metrics=MetricsRegistry()))
    return sink.events


class TestSummarize:
    def test_empty_trace(self):
        assert summarize([]) == "empty trace (no events)"

    def test_episode_timeline_shows_full_regulation_cycle(self, episode_events):
        report = summarize(episode_events)
        # The scripted episode walks bootstrap -> good -> poor/backoff -> reset,
        # and every leg must be visible in the timeline.
        assert "phase -> bootstrap" in report
        assert "phase -> regulating" in report
        assert "GOOD (" in report
        assert "POOR (" in report
        assert "SUSPEND 1.00s (backoff level 0)" in report
        assert "SUSPEND 2.00s (backoff level 1)" in report
        assert "RESET backoff" in report

    def test_census_and_aggregates(self, episode_events):
        report = summarize(episode_events)
        assert "event census:" in report
        assert "testpoint" in report
        assert "processed testpoints" in report
        assert "duty cycle" in report
        assert "suspensions imposed" in report

    def test_backoff_plot_present_with_enough_suspensions(self, episode_events):
        assert "suspension delay over time (s)" in summarize(episode_events)

    def test_sample_events_render_without_error(self):
        # Every event type must be representable (census at minimum).
        report = summarize(SAMPLE_EVENTS)
        assert f"trace: {len(SAMPLE_EVENTS)} events" in report
        assert "EVICTED" in report
        assert "benice polls" in report
        assert "discards" in report

    def test_long_timeline_is_elided(self):
        from repro.obs.events import JudgmentIssued

        events = [
            JudgmentIssued(t=float(i), judgment="good", samples=8, below=1)
            for i in range(200)
        ]
        report = summarize(events)
        assert "rows elided" in report
        # First and last rows survive the elision.
        assert "0.0s" in report
        assert "199.0s" in report


class TestFileRoundTrip:
    def test_summarize_file_matches_in_memory(self, tmp_path, episode_events):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in episode_events:
                sink.emit(event)
        assert read_events(path) == episode_events
        assert summarize_file(path) == summarize(episode_events)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(SAMPLE_EVENTS[1])
        path.write_text(path.read_text() + "\n\n")
        assert len(read_events(path)) == 1

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"k": "judgment", "v": 1, "t": 0.0}\nnot json\n')
        with pytest.raises(MannersError, match=":2:"):
            read_events(path)
