"""Causal decision tracing: span emission, determinism, and explain().

The acceptance bar for trace v2 (docs/observability.md): on a seeded
scenario, ``repro obs explain`` must deterministically reconstruct a
suspension decision end to end — testpoint samples → sign-test
accumulation with the active threshold-table row → judgment → backoff —
from the span records alone, without re-running the simulation.
"""

from __future__ import annotations

import pytest

from repro.core.errors import MannersError
from repro.faults.scenarios import _chaos_config, _hog, _worker
from repro.obs import events as obs_events
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry
from repro.obs.trace2 import (
    SPAN_NAMES,
    TraceContext,
    Tracer,
    explain_events,
    span_index,
    spans_of,
)
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import SimManners


def _traced_run(seed: int = 5, until: float = 60.0) -> MemorySink:
    """One regulated worker under contention, with tracing on."""
    sink = MemorySink()
    tel = Telemetry(sink=sink, label="run", tracer=Tracer())
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    manners = SimManners(kernel, _chaos_config(), telemetry=tel)
    w1 = kernel.spawn("w1", _worker(3000), process="li")
    manners.regulate(w1)
    kernel.spawn("hog", _hog(5.0, 2000), process="hog")
    kernel.run(until=until)
    tel.close()
    return sink


class TestTracer:
    def test_ids_start_at_one_and_are_sequential(self):
        tracer = Tracer()
        assert tracer.spans_issued == 0
        assert [tracer.next_id() for _ in range(3)] == [1, 2, 3]
        assert tracer.spans_issued == 3

    def test_contexts_share_the_allocator(self):
        tracer = Tracer()
        a, b = TraceContext(tracer), TraceContext(tracer)
        assert a.new_id() == 1
        assert b.new_id() == 2
        assert a.new_id() == 3

    def test_context_cursors_start_null(self):
        ctx = TraceContext(Tracer())
        assert ctx.testpoint == 0
        assert ctx.judgment == 0
        assert ctx.window == []


class TestSpanEmission:
    @pytest.fixture(scope="class")
    def trace(self):
        return _traced_run().events

    def test_pipeline_emits_every_decision_span(self, trace):
        names = {s.name for s in spans_of(trace)}
        assert {
            "testpoint",
            "signtest_sample",
            "judgment",
            "suspension",
            "calibration_update",
        } <= names
        assert names <= set(SPAN_NAMES)

    def test_span_ids_are_unique_and_in_emission_order(self, trace):
        ids = [s.span_id for s in spans_of(trace)]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)

    def test_parents_precede_children(self, trace):
        index = span_index(spans_of(trace))
        for span in index.values():
            if span.parent:
                assert span.parent in index
                assert span.parent < span.span_id

    def test_samples_parent_to_their_testpoint(self, trace):
        index = span_index(spans_of(trace))
        samples = [s for s in index.values() if s.name == "signtest_sample"]
        assert samples
        for sample in samples:
            assert index[sample.parent].name == "testpoint"

    def test_judgment_links_cover_its_window(self, trace):
        index = span_index(spans_of(trace))
        judgments = [s for s in index.values() if s.name == "judgment"]
        assert judgments
        for judgment in judgments:
            assert judgment.attrs["samples"] == len(judgment.links)
            for sid in judgment.links:
                assert index[sid].name == "signtest_sample"

    def test_poor_suspensions_parent_to_their_judgment(self, trace):
        index = span_index(spans_of(trace))
        poor = [
            s
            for s in index.values()
            if s.name == "suspension" and index[s.parent].name == "judgment"
        ]
        assert poor
        for suspension in poor:
            assert index[suspension.parent].attrs["judgment"] == "poor"

    def test_threshold_row_recorded_on_samples_and_judgments(self, trace):
        for span in spans_of(trace):
            if span.name in ("signtest_sample", "judgment"):
                assert "poor_at" in span.attrs
                assert "good_at" in span.attrs

    def test_seeded_run_reproduces_the_span_forest(self):
        first = spans_of(_traced_run().events)
        second = spans_of(_traced_run().events)
        assert first == second

    def test_disabled_telemetry_emits_no_spans(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink, label="run")  # no tracer attached
        kernel = Kernel(seed=5)
        kernel.add_disk("C")
        manners = SimManners(kernel, _chaos_config(), telemetry=tel)
        w1 = kernel.spawn("w1", _worker(500), process="li")
        manners.regulate(w1)
        kernel.run(until=20.0)
        tel.close()
        assert spans_of(sink.events) == []
        assert sink.events  # the flat event stream is unchanged


class TestExplain:
    @pytest.fixture(scope="class")
    def trace(self):
        return _traced_run().events

    def test_reconstructs_the_decision_end_to_end(self, trace):
        text = explain_events(trace, "w1")
        assert "why was 'w1' suspended" in text
        assert "judgment #" in text
        assert "POOR" in text
        assert "threshold row n=" in text
        assert "sample 1 at t=" in text
        assert "from testpoint #" in text
        assert "time to detect" in text

    def test_sample_count_matches_judgment_window(self, trace):
        index = span_index(spans_of(trace))
        suspension = [
            s
            for s in spans_of(trace)
            if s.name == "suspension" and index[s.parent].name == "judgment"
        ][-1]
        judgment = index[suspension.parent]
        text = explain_events(trace, "w1", at=suspension.t)
        assert text.count("├─ sample") == judgment.attrs["samples"]

    def test_at_selects_the_decision_in_effect(self, trace):
        suspensions = [s for s in spans_of(trace) if s.name == "suspension"]
        first = suspensions[0]
        text = explain_events(trace, "w1", at=first.t)
        assert f"suspension #{first.span_id}:" in text

    def test_backoff_ladder_rendered_after_doublings(self, trace):
        suspensions = [s for s in spans_of(trace) if s.name == "suspension"]
        deep = [s for s in suspensions if s.attrs.get("level", 0) >= 2]
        if not deep:
            pytest.skip("seed produced no consecutive poor judgments")
        text = explain_events(trace, "w1", at=deep[0].t)
        assert "backoff doubling since last reset:" in text
        assert "level 1:" in text

    def test_deterministic_output(self, trace):
        assert explain_events(trace, "w1") == explain_events(trace, "w1")

    def test_unknown_thread_names_the_candidates(self, trace):
        with pytest.raises(MannersError, match="threads with suspensions: w1"):
            explain_events(trace, "nope")

    def test_at_before_first_suspension_is_an_error(self, trace):
        with pytest.raises(MannersError, match="at or before t=0.0"):
            explain_events(trace, "w1", at=0.0)

    def test_spanless_trace_is_an_error(self):
        flat = [obs_events.JudgmentIssued(t=1.0, src="w1", judgment="poor")]
        with pytest.raises(MannersError, match="no spans"):
            explain_events(flat, "w1")
