"""Box-plot statistics, tables, and the trial harness."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.runner import aggregate, run_trials, trial_count
from repro.analysis.stats import box_stats, median, quartiles
from repro.analysis.tables import format_box_table, format_ratio_line, format_series


class TestMedianQuartiles:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_quartiles_tukey(self):
        lo, hi = quartiles([1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert lo == 2.5
        assert hi == 7.5

    def test_quartiles_single_value(self):
        assert quartiles([5.0]) == (5.0, 5.0)


class TestBoxStats:
    def test_paper_definition(self):
        """Whiskers at extreme data within quartile +/- 1.5 * box height."""
        data = [10, 11, 12, 13, 14, 15, 16, 17, 18, 40]
        stats = box_stats(data)
        assert stats.median == 14.5
        height = stats.box_height
        assert stats.whisker_high <= stats.upper_quartile + 1.5 * height
        assert 40 in stats.outliers

    def test_no_outliers_for_tight_data(self):
        stats = box_stats([10.0, 10.1, 10.2, 10.3, 10.4])
        assert stats.outliers == ()
        assert stats.whisker_low == 10.0
        assert stats.whisker_high == 10.4

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            box_stats([1.0, float("nan")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_invariants(self, data):
        stats = box_stats(data)
        assert stats.lower_quartile <= stats.median <= stats.upper_quartile
        assert stats.whisker_low <= stats.lower_quartile + 1e-9
        assert stats.whisker_high >= stats.upper_quartile - 1e-9
        assert stats.count == len(data)
        # Outliers plus whisker range cover every datum.
        for v in data:
            assert (
                stats.whisker_low - 1e-9 <= v <= stats.whisker_high + 1e-9
                or v in stats.outliers
            )


class TestTables:
    def test_box_table_renders_all_rows(self):
        rows = {
            "not running": box_stats([300.0, 301.0, 299.0]),
            "unregulated": box_stats([570.0, 575.0, 565.0]),
        }
        text = format_box_table("Figure 3", rows, baseline="not running")
        assert "Figure 3" in text
        assert "not running" in text
        assert "unregulated" in text
        assert "1.90x" in text  # relative median column

    def test_series_downsamples(self):
        series = [(float(i), float(i) * 2) for i in range(1000)]
        text = format_series("trace", series, max_points=10)
        assert "every" in text

    def test_empty_series(self):
        assert "(empty series)" in format_series("x", [])

    def test_ratio_line(self):
        line = format_ratio_line("db run time", 280.0, 300.0, unit="s")
        assert "0.93" in line


class TestRunner:
    def test_run_trials_distinct_seeds(self):
        seeds = run_trials(lambda seed: seed, trials=5)
        assert len(set(seeds)) == 5

    def test_trial_count_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "7")
        assert trial_count() == 7

    def test_trial_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        assert trial_count(default=3) == 3

    def test_trial_count_rejects_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "0")
        with pytest.raises(ValueError):
            trial_count()

    def test_aggregate(self):
        stats = aggregate({"a": [1.0, 2.0, 3.0], "b": [4.0, 5.0, 6.0]})
        assert stats["a"].median == 2.0
        assert stats["b"].median == 5.0


class TestAsciiPlot:
    def test_sparkline_shape(self):
        from repro.analysis.ascii_plot import sparkline

        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] != line[-1]

    def test_sparkline_constant_series(self):
        from repro.analysis.ascii_plot import sparkline

        assert sparkline([2.0, 2.0]) == "██"

    def test_sparkline_empty(self):
        from repro.analysis.ascii_plot import sparkline

        assert sparkline([]) == ""

    def test_timeseries_plot_renders(self):
        from repro.analysis.ascii_plot import timeseries_plot

        series = [(float(i), float(i % 7)) for i in range(200)]
        text = timeseries_plot(series, width=40, height=8, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 1 + 8 + 2  # title + rows + axis + labels
        assert "•" in text

    def test_timeseries_plot_empty(self):
        from repro.analysis.ascii_plot import timeseries_plot

        assert "(empty series)" in timeseries_plot([], title="x")

    def test_timeseries_plot_validates_size(self):
        from repro.analysis.ascii_plot import timeseries_plot

        with pytest.raises(ValueError):
            timeseries_plot([(0.0, 1.0)], width=4, height=2)
