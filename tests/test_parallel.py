"""Parallel trial execution: determinism, caching, counter merging."""

from __future__ import annotations

import json
from functools import partial

import pytest

from repro.analysis.parallel import (
    ParallelRunner,
    TrialCache,
    TrialEnvelope,
    code_fingerprint,
    config_fingerprint,
    resolve_jobs,
)
from repro.analysis.runner import run_trials
from repro.experiments.scenarios import MEASURED_SCENARIOS, measured_trial
from repro.obs import MetricsRegistry, Telemetry

#: Tiny geometry so a full parity matrix stays in test-suite time.
SCALE = 0.01


def _double(seed):
    """Module-level (picklable) trial: deterministic pure function."""
    return {"seed": seed, "value": seed * 2}


def _counting_trial(seed, telemetry=None):
    """Picklable trial that reports per-trial counters via telemetry."""
    telemetry.metrics.inc("trials.run")
    telemetry.metrics.inc("trials.seedsum", float(seed))
    return seed * 2


class TestResolveJobs:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None, default=1) == 5

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None, default=2) == 2

    def test_default_none_means_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None, default=None) >= 1

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_explicit(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad)

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError):
            resolve_jobs(None)


class TestFingerprints:
    def test_code_fingerprint_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_config_fingerprint_distinguishes(self):
        a = config_fingerprint({"scenario": "x", "scale": 1.0})
        b = config_fingerprint({"scenario": "x", "scale": 0.5})
        assert a != b

    def test_config_fingerprint_key_order_insensitive(self):
        a = config_fingerprint({"a": 1, "b": 2})
        b = config_fingerprint({"b": 2, "a": 1})
        assert a == b


class TestSerialParallelParity:
    """jobs=N must return exactly what jobs=1 returns (acceptance criterion)."""

    @pytest.mark.parametrize("scenario", sorted(MEASURED_SCENARIOS))
    @pytest.mark.parametrize("seed_base", [1000, 2000, 7321])
    def test_scenario_parity(self, scenario, seed_base):
        trial = partial(measured_trial, scenario, "MS Manners", scale=SCALE)
        serial = ParallelRunner(jobs=1).run(trial, trials=3, seed_base=seed_base)
        fanned = ParallelRunner(jobs=4).run(trial, trials=3, seed_base=seed_base)
        assert fanned == serial

    def test_results_ordered_by_seed(self):
        out = ParallelRunner(jobs=4).run(_double, trials=8, seed_base=100)
        assert [r["seed"] for r in out] == list(range(100, 108))

    def test_run_trials_jobs_kwarg(self):
        serial = run_trials(_double, trials=5, seed_base=50, jobs=1)
        fanned = run_trials(_double, trials=5, seed_base=50, jobs=4)
        assert fanned == serial

    def test_serial_path_accepts_lambdas(self):
        # The historical jobs=1 path must keep working for closures.
        out = run_trials(lambda seed: seed + 1, trials=3, seed_base=0, jobs=1)
        assert out == [1, 2, 3]

    def test_invalid_trial_count(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1).run(_double, trials=0)


class TestTrialCache:
    def test_second_run_hits_and_matches(self, tmp_path):
        cache = TrialCache(tmp_path)
        config = {"scenario": "t", "scale": SCALE}
        first = ParallelRunner(jobs=1, cache=cache).run(
            _double, trials=4, seed_base=10, cache_name="t", cache_config=config
        )
        assert cache.hits == 0 and cache.misses == 4
        again = ParallelRunner(jobs=1, cache=cache).run(
            _double, trials=4, seed_base=10, cache_name="t", cache_config=config
        )
        assert again == first
        assert cache.hits == 4

    def test_real_scenario_cache_round_trip(self, tmp_path):
        cache = TrialCache(tmp_path)
        trial = partial(measured_trial, "defrag_idle", "unregulated", scale=SCALE)
        config = {"scenario": "defrag_idle", "mode": "unregulated", "scale": SCALE}
        fresh = ParallelRunner(jobs=1, cache=cache).run(
            trial, trials=2, seed_base=3000, cache_name="defrag_idle", cache_config=config
        )
        cached = ParallelRunner(jobs=1, cache=cache).run(
            trial, trials=2, seed_base=3000, cache_name="defrag_idle", cache_config=config
        )
        assert cached == fresh  # JSON round trip is exact
        assert cache.hits == 2

    def test_config_change_misses(self, tmp_path):
        cache = TrialCache(tmp_path)
        ParallelRunner(jobs=1, cache=cache).run(
            _double, trials=2, seed_base=0, cache_name="t", cache_config={"scale": 1.0}
        )
        ParallelRunner(jobs=1, cache=cache).run(
            _double, trials=2, seed_base=0, cache_name="t", cache_config={"scale": 0.5}
        )
        assert cache.hits == 0

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = TrialCache(tmp_path, enabled=False)
        ParallelRunner(jobs=1, cache=cache).run(
            _double, trials=2, seed_base=0, cache_name="t", cache_config=None
        )
        assert not any(tmp_path.rglob("*.json"))

    def test_non_json_result_raises(self, tmp_path):
        cache = TrialCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put("t", "k", {"bad": object()})

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = cache.key("t", None, 0)
        cache.put("t", key, 1)
        path = tmp_path / "t" / f"{key}.json"
        path.write_text("not json", encoding="utf-8")
        hit, _ = cache.get("t", key)
        assert not hit

    def test_entries_record_key_material(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = cache.key("t", {"a": 1}, 7)
        cache.put("t", key, [1, 2])
        [path] = (tmp_path / "t").glob("*.json")
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry == {"name": "t", "key": key, "value": [1, 2]}


class TestTelemetryMerge:
    def test_counters_merge_additively(self):
        telemetry = Telemetry(metrics=MetricsRegistry())
        out = ParallelRunner(jobs=1).run(
            _counting_trial, trials=5, seed_base=10, telemetry=telemetry
        )
        assert out == [20, 22, 24, 26, 28]
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["trials.run"] == 5
        assert counters["trials.seedsum"] == sum(range(10, 15))

    def test_parallel_merge_matches_serial(self):
        serial = Telemetry(metrics=MetricsRegistry())
        fanned = Telemetry(metrics=MetricsRegistry())
        a = ParallelRunner(jobs=1).run(
            _counting_trial, trials=6, seed_base=0, telemetry=serial
        )
        b = ParallelRunner(jobs=4).run(
            _counting_trial, trials=6, seed_base=0, telemetry=fanned
        )
        assert a == b
        assert (
            serial.metrics.snapshot()["counters"]
            == fanned.metrics.snapshot()["counters"]
        )

    def test_cached_trials_contribute_no_counters(self, tmp_path):
        cache = TrialCache(tmp_path)
        warm = Telemetry(metrics=MetricsRegistry())
        ParallelRunner(jobs=1, cache=cache).run(
            _counting_trial, trials=3, seed_base=0, telemetry=warm,
            cache_name="t", cache_config=None,
        )
        cold = Telemetry(metrics=MetricsRegistry())
        ParallelRunner(jobs=1, cache=cache).run(
            _counting_trial, trials=3, seed_base=0, telemetry=cold,
            cache_name="t", cache_config=None,
        )
        assert "trials.run" not in cold.metrics.snapshot()["counters"]


class TestEnvelope:
    def test_envelope_defaults(self):
        env = TrialEnvelope(index=0, seed=5, value=1)
        assert env.counters == {}
