"""Focused tests for cross-module seams not covered elsewhere."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.config import MannersConfig
from repro.core.superintendent import Superintendent
from repro.core.supervisor import Supervisor
from repro.experiments.scenarios import EXPERIMENT_CONFIG, _fragmented_volume
from repro.simos.kernel import Kernel


class TestExperimentConfig:
    def test_paper_error_probabilities(self):
        assert EXPERIMENT_CONFIG.alpha == 0.05
        assert EXPERIMENT_CONFIG.beta == 0.2

    def test_probation_zeroed_per_protocol(self):
        """Section 9.1: 'We zeroed the probation period.'"""
        assert EXPERIMENT_CONFIG.probation_period == 0.0

    def test_suspension_cap_is_paper_magnitude(self):
        assert EXPERIMENT_CONFIG.max_suspension == 256.0


class TestFragmentedVolume:
    def test_population_is_fragmented_and_seeded(self):
        kernel = Kernel(seed=1)
        kernel.add_disk("C")
        volume = _fragmented_volume(kernel, seed=1, file_count=64)
        assert volume.file_count == 64
        assert volume.mean_fragments_per_file() > 2.0

    def test_same_seed_same_layout(self):
        layouts = []
        for _ in range(2):
            kernel = Kernel(seed=5)
            kernel.add_disk("C")
            volume = _fragmented_volume(kernel, seed=5, file_count=32)
            layouts.append(
                tuple((f.path, f.size, tuple(e.start for e in f.extents))
                      for f in volume.files())
            )
        assert layouts[0] == layouts[1]

    def test_different_seed_different_layout(self):
        kernel_a = Kernel(seed=1)
        kernel_a.add_disk("C")
        vol_a = _fragmented_volume(kernel_a, seed=1, file_count=32)
        kernel_b = Kernel(seed=2)
        kernel_b.add_disk("C")
        vol_b = _fragmented_volume(kernel_b, seed=2, file_count=32)
        sizes_a = [f.size for f in vol_a.files()]
        sizes_b = [f.size for f in vol_b.files()]
        assert sizes_a != sizes_b


class TestSupervisorNextPollTime:
    def test_combines_thread_and_token_wakes(self, fast_config):
        boss = Superintendent()
        sup_a = Supervisor(fast_config, superintendent=boss, process_id="A")
        sup_b = Supervisor(fast_config, superintendent=boss, process_id="B")
        sup_a.register_thread("a1")
        sup_b.register_thread("b1")
        assert sup_a.poll(0.0) == "a1"
        # B can't poll in; its own thread is eligible now, so the thread
        # component is None, but the superintendent hint drives the retry.
        assert sup_b.poll(0.0) is None
        wake = sup_b.next_poll_time(0.0)
        assert wake is None or wake >= 0.0  # no infinite wake times

    def test_infinite_eligibilities_filtered(self, fast_config):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        sup.poll(0.0)
        # Evict as hung: the thread's eligibility becomes infinite.
        import math as _math

        sup._arbiter.set_eligible_at("t1", _math.inf)
        sup._arbiter.release("t1")
        assert sup.next_poll_time(0.0) is None


class TestBeNicePollerIntegration:
    def test_interval_adapts_to_slow_counters(self):
        """BeNice widens its polling interval for a sluggish updater."""
        from repro.benice.polling import AdaptivePoller

        poller = AdaptivePoller(initial_interval=0.1, max_interval=5.0, window=8)
        rng = random.Random(1)
        # Counters update once a second, polled at 0.1s: ~90% stale polls.
        for _ in range(200):
            poller.record_poll(progress_changed=rng.random() < 0.1)
        assert poller.interval > 0.5

    def test_interval_narrows_for_fast_counters(self):
        from repro.benice.polling import AdaptivePoller

        poller = AdaptivePoller(initial_interval=2.0, min_interval=0.1, window=8)
        for _ in range(200):
            poller.record_poll(progress_changed=True)
        assert poller.interval == pytest.approx(0.1)


class TestConfigDerivedHelpers:
    def test_time_constants_scale_with_n(self):
        small = MannersConfig(averaging_n=100)
        large = MannersConfig(averaging_n=10_000)
        assert large.smoothing_time_constant(0.3) == pytest.approx(
            100 * small.smoothing_time_constant(0.3)
        )
        assert large.tracking_time_constant() == pytest.approx(
            100 * small.tracking_time_constant()
        )

    def test_theta_close_to_one_for_paper_n(self):
        assert math.isclose(MannersConfig().theta, 0.9999)
