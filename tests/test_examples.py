"""Smoke tests: every example script runs to completion.

Each example is executed as a subprocess at a small scale; the assertion
is that it exits cleanly and prints its headline output.  These keep the
documentation honest — an example that no longer runs fails the suite.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_defrag_vs_database(self):
        out = run_example("defrag_vs_database.py", "--scale", "0.15")
        assert "MS Manners" in out
        assert "shape check" in out

    def test_groveler_vs_setup(self):
        out = run_example("groveler_vs_setup.py", "--scale", "0.15")
        assert "Groveler" in out

    def test_calibration_demo(self):
        out = run_example("calibration_demo.py", "--hours", "2")
        assert "initial target duration" in out

    def test_multi_metric_indexer(self):
        out = run_example("multi_metric_indexer.py")
        assert "rates inferred by ridge regression" in out

    def test_benice_external(self):
        out = run_example("benice_external.py")
        assert "no application changes were required" in out

    def test_quickstart(self):
        out = run_example("quickstart.py", timeout=60.0)
        assert "worker items completed" in out

    def test_duty_trace_demo(self):
        out = run_example("duty_trace_demo.py", "--scale", "0.2")
        assert "Figure 7" in out and "Figure 8" in out

    def test_regulate_real_process(self):
        out = run_example("regulate_real_process.py", timeout=90.0)
        assert "worker resumed and untouched" in out
