"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.clock import ManualClock
from repro.core.config import MannersConfig


@pytest.fixture
def clock() -> ManualClock:
    """A fresh manual clock starting at zero."""
    return ManualClock()


@pytest.fixture
def fast_config() -> MannersConfig:
    """A configuration tuned for quick unit-test convergence.

    Short bootstrap, no probation, small averaging window, no lightweight
    gating; alpha/beta stay at the paper's values.
    """
    return MannersConfig(
        bootstrap_testpoints=5,
        probation_period=0.0,
        averaging_n=100,
        min_testpoint_interval=0.0,
        initial_suspension=1.0,
        max_suspension=64.0,
        hung_threshold=30.0,
    )
