"""Property-based tests: the regulator never wedges, lies, or leaks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ManualClock
from repro.core.config import MannersConfig
from repro.core.controller import ThreadRegulator


@st.composite
def event_streams(draw):
    """A random but legal stream of testpoint events."""
    events = draw(
        st.lists(
            st.tuples(
                st.floats(0.001, 5.0),     # inter-call gap
                st.floats(0.0, 50.0),      # progress made in the gap
                st.integers(0, 2),         # metric set index
                st.booleans(),             # honor the mandated delay?
            ),
            min_size=1,
            max_size=120,
        )
    )
    return events


class TestNeverMisbehaves:
    @settings(max_examples=60, deadline=None)
    @given(event_streams())
    def test_arbitrary_streams_are_safe(self, events):
        """Any legal call stream yields finite, non-negative delays and
        consistent statistics — no exceptions, no NaNs, no negative time."""
        config = MannersConfig(
            bootstrap_testpoints=3,
            probation_period=0.0,
            averaging_n=50,
            min_testpoint_interval=0.05,
            initial_suspension=0.5,
            max_suspension=8.0,
            hung_threshold=10.0,
        )
        regulator = ThreadRegulator(config)
        clock = ManualClock()
        counters = {0: 0.0, 1: 0.0, 2: 0.0}
        for gap, progress, index, honor in events:
            clock.advance(gap)
            counters[index] += progress
            decision = regulator.on_testpoint(clock.now(), index, [counters[index]])
            assert decision.delay >= 0.0
            assert decision.delay <= config.max_suspension
            assert decision.duration >= 0.0
            if honor and decision.delay > 0.0:
                clock.advance(decision.delay)
        stats = regulator.stats
        assert stats.testpoints == len(events)
        assert stats.processed + stats.lightweight == stats.testpoints
        judged = stats.poor_judgments + stats.good_judgments + stats.indeterminate
        assert judged <= stats.processed
        assert stats.total_suspension >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.floats(1.0, 1000.0))
    def test_state_roundtrip_preserves_targets(self, seed, rate):
        """export/import of calibration state preserves target durations."""
        config = MannersConfig(
            bootstrap_testpoints=3, probation_period=0.0, averaging_n=50,
            min_testpoint_interval=0.0,
        )
        rng = random.Random(seed)
        donor = ThreadRegulator(config)
        clock = ManualClock()
        counter = 0.0
        for _ in range(60):
            dt = 0.1 * rng.uniform(0.8, 1.2)
            clock.advance(dt)
            counter += rate * dt
            decision = donor.on_testpoint(clock.now(), 0, [counter])
            if decision.delay:
                clock.advance(decision.delay)
        heir = ThreadRegulator(config)
        heir.import_state(donor.export_state())
        probe = (rate * 0.1,)
        assert heir.target_duration(0, probe) == pytest.approx(
            donor.target_duration(0, probe), rel=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sustained_contention_always_detected(self, seed):
        """After calibration, any sustained 3x slowdown is condemned."""
        config = MannersConfig(
            bootstrap_testpoints=5, probation_period=0.0, averaging_n=100,
            min_testpoint_interval=0.0,
        )
        rng = random.Random(seed)
        regulator = ThreadRegulator(config)
        clock = ManualClock()
        counter = 0.0
        for _ in range(120):
            dt = 0.1 * rng.uniform(0.9, 1.1)
            clock.advance(dt)
            counter += 100.0 * dt
            d = regulator.on_testpoint(clock.now(), 0, [counter])
            if d.delay:
                clock.advance(d.delay)
        before = regulator.stats.poor_judgments
        for _ in range(60):
            dt = 0.1 * rng.uniform(0.9, 1.1)
            clock.advance(dt)
            counter += 33.0 * dt  # 3x slowdown
            d = regulator.on_testpoint(clock.now(), 0, [counter])
            if d.delay:
                clock.advance(d.delay)
        assert regulator.stats.poor_judgments > before

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_steady_progress_never_saturates_backoff(self, seed):
        """Healthy progress must never drive the backoff to its cap."""
        config = MannersConfig(
            bootstrap_testpoints=5, probation_period=0.0, averaging_n=100,
            min_testpoint_interval=0.0, max_suspension=64.0,
        )
        rng = random.Random(seed)
        regulator = ThreadRegulator(config)
        clock = ManualClock()
        counter = 0.0
        for _ in range(400):
            dt = 0.1 * rng.uniform(0.7, 1.3)
            clock.advance(dt)
            counter += 100.0 * dt
            d = regulator.on_testpoint(clock.now(), 0, [counter])
            if d.delay:
                clock.advance(d.delay)
        assert not regulator.suspension.saturated
