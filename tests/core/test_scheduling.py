"""Decay-usage arbitration (section 4.5 / 7.1)."""

from __future__ import annotations

import pytest

from repro.core.errors import RegulationStateError
from repro.core.scheduling import MultiplexArbiter


class TestMembership:
    def test_add_remove(self):
        arb = MultiplexArbiter()
        arb.add("a")
        assert "a" in arb
        arb.remove("a")
        assert "a" not in arb

    def test_double_add_rejected(self):
        arb = MultiplexArbiter()
        arb.add("a")
        with pytest.raises(RegulationStateError):
            arb.add("a")

    def test_remove_owner_frees_slot(self):
        arb = MultiplexArbiter()
        arb.add("a")
        assert arb.acquire(0.0) == "a"
        arb.remove("a")
        assert arb.owner is None

    def test_unknown_key_rejected(self):
        arb = MultiplexArbiter()
        with pytest.raises(RegulationStateError):
            arb.set_priority("ghost", 1)


class TestArbitration:
    def test_single_candidate_wins(self):
        arb = MultiplexArbiter()
        arb.add("a")
        assert arb.acquire(0.0) == "a"
        assert arb.owner == "a"

    def test_owner_is_sticky(self):
        arb = MultiplexArbiter()
        arb.add("a")
        arb.add("b")
        assert arb.acquire(0.0) == "a"
        assert arb.acquire(1.0) == "a"  # still owned

    def test_priority_wins(self):
        arb = MultiplexArbiter()
        arb.add("low", priority=0)
        arb.add("high", priority=5)
        assert arb.acquire(0.0) == "high"

    def test_eligibility_gates(self):
        arb = MultiplexArbiter()
        arb.add("a")
        arb.set_eligible_at("a", 10.0)
        assert arb.acquire(5.0) is None
        assert arb.acquire(10.0) == "a"

    def test_usage_breaks_ties(self):
        arb = MultiplexArbiter()
        arb.add("a")
        arb.add("b")
        arb.charge("a", 100.0)
        assert arb.acquire(0.0) == "b"

    def test_usage_decays(self):
        arb = MultiplexArbiter(usage_decay=0.5)
        arb.add("a")
        arb.add("b")
        arb.charge("a", 8.0)
        # Each acquire decays all usage by 0.5.
        for _ in range(10):
            owner = arb.acquire(0.0)
            arb.release(owner)
        assert arb.usage("a") < 0.1

    def test_admission_order_final_tiebreak(self):
        arb = MultiplexArbiter()
        arb.add("first")
        arb.add("second")
        assert arb.acquire(0.0) == "first"

    def test_release_by_non_owner_is_noop(self):
        arb = MultiplexArbiter()
        arb.add("a")
        arb.add("b")
        arb.acquire(0.0)
        arb.release("b")
        assert arb.owner == "a"

    def test_negative_charge_rejected(self):
        arb = MultiplexArbiter()
        arb.add("a")
        with pytest.raises(ValueError):
            arb.charge("a", -1.0)


class TestPeekAndWake:
    def test_peek_does_not_mutate(self):
        arb = MultiplexArbiter()
        arb.add("a")
        assert arb.peek(0.0) == "a"
        assert arb.owner is None

    def test_peek_returns_owner_when_held(self):
        arb = MultiplexArbiter()
        arb.add("a")
        arb.add("b")
        arb.acquire(0.0)
        assert arb.peek(0.0) == "a"

    def test_next_eligible_time(self):
        arb = MultiplexArbiter()
        arb.add("a")
        arb.add("b")
        arb.set_eligible_at("a", 10.0)
        arb.set_eligible_at("b", 20.0)
        assert arb.next_eligible_time(0.0) == 10.0

    def test_next_eligible_none_when_someone_ready(self):
        arb = MultiplexArbiter()
        arb.add("a")
        assert arb.next_eligible_time(0.0) is None

    def test_next_eligible_ignores_owner(self):
        arb = MultiplexArbiter()
        arb.add("a")
        arb.acquire(0.0)
        assert arb.next_eligible_time(0.0) is None  # no other candidates


class TestFairness:
    def test_round_robin_emerges_from_decay_usage(self):
        """Equal-priority candidates share the slot roughly equally."""
        arb = MultiplexArbiter(usage_decay=0.9)
        for name in ("a", "b", "c"):
            arb.add(name)
        counts = {"a": 0, "b": 0, "c": 0}
        now = 0.0
        for _ in range(300):
            owner = arb.acquire(now)
            counts[owner] += 1
            arb.charge(owner, 1.0)
            arb.release(owner)
            now += 1.0
        assert max(counts.values()) - min(counts.values()) <= 10
