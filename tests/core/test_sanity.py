"""Progress-metric sanity checking (section 11 extension)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.errors import ConfigError, MetricError
from repro.core.sanity import ClockAnomalyGuard, ProgressSanityChecker


class TestClockAnomalyGuard:
    def test_first_reading_primes(self):
        guard = ClockAnomalyGuard()
        assert guard.check(10.0) is None
        assert guard.last == 10.0

    def test_plausible_readings_advance_baseline(self):
        guard = ClockAnomalyGuard()
        for t in (1.0, 2.0, 2.0, 3.5):
            assert guard.check(t) is None
        assert guard.last == 3.5
        assert guard.backward_steps == 0
        assert guard.forward_jumps == 0

    def test_backward_step_keeps_baseline(self):
        guard = ClockAnomalyGuard()
        guard.check(10.0)
        assert guard.check(4.0) == "backward"
        assert guard.backward_steps == 1
        # Baseline never moves backward: one glitch is one anomaly, not a
        # run of them.
        assert guard.last == 10.0
        assert guard.check(11.0) is None

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_counts_as_backward(self, bad):
        guard = ClockAnomalyGuard()
        guard.check(5.0)
        assert guard.check(bad) == "backward"
        assert guard.backward_steps == 1
        assert guard.last == 5.0

    def test_forward_jump_advances_baseline(self):
        guard = ClockAnomalyGuard(max_jump=60.0)
        guard.check(0.0)
        assert guard.check(3600.0) == "jump"
        assert guard.forward_jumps == 1
        # Time really advanced; only the spanning interval was suspect.
        assert guard.last == 3600.0
        assert guard.check(3601.0) is None

    def test_jump_at_exact_threshold_is_plausible(self):
        guard = ClockAnomalyGuard(max_jump=60.0)
        guard.check(0.0)
        assert guard.check(60.0) is None

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan])
    def test_max_jump_domain(self, bad):
        with pytest.raises(ConfigError):
            ClockAnomalyGuard(max_jump=bad)


def feed_honest(checker, rng, windows=100, cost=0.001):
    """Honest windows: usage proportional to progress (+noise)."""
    for _ in range(windows):
        progress = rng.uniform(10.0, 100.0)
        usage = progress * cost * rng.uniform(0.8, 1.2)
        checker.observe(progress, usage)


class TestBaseline:
    def test_learns_cost_model(self):
        checker = ProgressSanityChecker()
        rng = random.Random(1)
        feed_honest(checker, rng, windows=60)
        assert checker.ready
        # ~1000 units of progress per unit of usage.
        assert checker.baseline_progress_per_resource == pytest.approx(1000.0, rel=0.2)

    def test_not_ready_before_min_samples(self):
        checker = ProgressSanityChecker(min_samples=16)
        checker.observe(10.0, 0.01)
        assert not checker.ready
        assert not checker.suspicious

    def test_zero_progress_windows_pass(self):
        checker = ProgressSanityChecker()
        verdict = checker.observe(0.0, 5.0)
        assert not verdict.implausible

    def test_vector_progress_summed(self):
        checker = ProgressSanityChecker()
        rng = random.Random(2)
        for _ in range(40):
            checker.observe([5.0, 15.0], 0.02)
        assert checker.baseline_progress_per_resource == pytest.approx(1000.0, rel=0.1)


class TestDetection:
    def test_honest_app_stays_unsuspicious(self):
        checker = ProgressSanityChecker()
        rng = random.Random(3)
        feed_honest(checker, rng, windows=300)
        assert not checker.suspicious
        assert checker.suspicion < 0.1

    def test_counter_inflation_detected(self):
        """A malicious app reporting 10x progress for the same usage."""
        checker = ProgressSanityChecker()
        rng = random.Random(4)
        feed_honest(checker, rng, windows=100)
        for _ in range(60):
            progress = rng.uniform(10.0, 100.0) * 10.0  # inflated
            usage = (progress / 10.0) * 0.001
            verdict = checker.observe(progress, usage)
        assert verdict.implausible
        assert checker.suspicious

    def test_cheater_cannot_poison_baseline(self):
        """Implausible windows must not teach the checker the inflated
        cost model."""
        checker = ProgressSanityChecker()
        rng = random.Random(5)
        feed_honest(checker, rng, windows=100)
        baseline_before = checker.baseline_progress_per_resource
        for _ in range(200):
            checker.observe(1000.0, 0.0001)  # wildly inflated
        assert checker.baseline_progress_per_resource == pytest.approx(
            baseline_before, rel=0.05
        )
        assert checker.suspicious

    def test_genuinely_cheaper_work_is_absorbed(self):
        """A modest, real efficiency gain (2x) is below the threshold and
        gradually becomes the new baseline — not an accusation."""
        checker = ProgressSanityChecker(ratio_threshold=4.0)
        rng = random.Random(6)
        feed_honest(checker, rng, windows=100, cost=0.001)
        for _ in range(400):
            feed_honest(checker, rng, windows=1, cost=0.0005)
        assert not checker.suspicious
        assert checker.baseline_progress_per_resource > 1500.0

    def test_suspicion_decays_after_episode(self):
        checker = ProgressSanityChecker()
        rng = random.Random(7)
        feed_honest(checker, rng, windows=100)
        for _ in range(60):
            checker.observe(5000.0, 0.0001)
        assert checker.suspicious
        feed_honest(checker, rng, windows=300)
        assert not checker.suspicious


class TestValidation:
    def test_threshold_domain(self):
        with pytest.raises(ConfigError):
            ProgressSanityChecker(ratio_threshold=1.0)
        with pytest.raises(ConfigError):
            ProgressSanityChecker(suspicion_threshold=0.0)
        with pytest.raises(ConfigError):
            ProgressSanityChecker(min_samples=1)

    def test_rejects_bad_inputs(self):
        checker = ProgressSanityChecker()
        with pytest.raises(MetricError):
            checker.observe(-1.0, 1.0)
        with pytest.raises(MetricError):
            checker.observe(1.0, float("nan"))
