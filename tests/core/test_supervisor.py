"""Per-process supervisor: time-multiplex isolation of threads."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.errors import RegulationStateError
from repro.core.superintendent import Superintendent
from repro.core.supervisor import Supervisor
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry


class TestRegistration:
    def test_register_returns_regulator(self, fast_config):
        sup = Supervisor(fast_config)
        reg = sup.register_thread("t1")
        assert reg.config is fast_config

    def test_double_registration_rejected(self, fast_config):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        with pytest.raises(RegulationStateError):
            sup.register_thread("t1")

    def test_unregister_frees_slot(self, fast_config):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        assert sup.poll(0.0) == "t1"
        sup.unregister_thread("t1")
        assert sup.running is None

    def test_unknown_thread_rejected(self, fast_config):
        sup = Supervisor(fast_config)
        with pytest.raises(RegulationStateError):
            sup.on_testpoint(0.0, "ghost", 0, [0.0])


class TestIsolation:
    def test_only_one_thread_runs(self, fast_config):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        sup.register_thread("t2")
        owner = sup.poll(0.0)
        assert owner in ("t1", "t2")
        assert sup.poll(0.0) == owner  # no second seat

    def test_slot_hands_over_on_testpoint(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        sup.register_thread("t2")
        assert sup.poll(clock.now()) == "t1"
        clock.advance(0.2)
        sup.on_testpoint(clock.now(), "t1", 0, [0.0])
        # t1 released; the arbiter should now prefer the unused t2.
        assert sup.poll(clock.now()) == "t2"

    def test_priority_thread_favoured(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("lo", priority=0)
        sup.register_thread("hi", priority=3)
        assert sup.poll(clock.now()) == "hi"

    def test_set_thread_priority(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("a")
        sup.register_thread("b")
        sup.set_thread_priority("b", 10)
        assert sup.poll(clock.now()) == "b"

    def test_suspended_thread_not_seated(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        # Prime then drive into a processed testpoint with zero rate so a
        # delay eventually appears; simpler: directly set eligibility via a
        # testpoint decision path is heavy — instead verify next_wake_time.
        sup.on_testpoint(clock.now(), "t1", 0, [0.0])
        clock.advance(0.2)
        decision = sup.on_testpoint(clock.now(), "t1", 0, [1.0])
        assert decision.processed
        assert sup.poll(clock.now()) == "t1"  # no delay in bootstrap


class TestSuperintendentIntegration:
    def test_token_shared_across_processes(self, fast_config, clock):
        boss = Superintendent()
        sup_a = Supervisor(fast_config, superintendent=boss, process_id="A")
        sup_b = Supervisor(fast_config, superintendent=boss, process_id="B")
        sup_a.register_thread("a1")
        sup_b.register_thread("b1")
        assert sup_a.poll(clock.now()) == "a1"
        # B cannot seat while A holds the machine-wide token.
        assert sup_b.poll(clock.now()) is None
        # A's thread testpoints and A has nobody eligible... it keeps a1
        # eligible immediately (delay 0), so A retains the token.
        clock.advance(0.2)
        sup_a.on_testpoint(clock.now(), "a1", 0, [0.0])
        sup_a.unregister_thread("a1")
        assert sup_a.poll(clock.now()) is None  # releases token
        assert sup_b.poll(clock.now()) == "b1"

    def test_process_registered_once(self, fast_config):
        boss = Superintendent()
        Supervisor(fast_config, superintendent=boss, process_id="A")
        # Creating a second supervisor with the same id must not re-register.
        with pytest.raises(RegulationStateError):
            boss.register_process("A")


class TestHungEviction:
    def test_owner_evicted_after_threshold(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        sup.register_thread("t2")
        assert sup.poll(clock.now()) == "t1"
        clock.advance(fast_config.hung_threshold + 1.0)
        evicted = sup.check_hung(clock.now())
        assert evicted == "t1"
        assert sup.is_hung("t1")
        assert sup.poll(clock.now()) == "t2"

    def test_no_eviction_below_threshold(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        sup.poll(clock.now())
        clock.advance(fast_config.hung_threshold / 2)
        assert sup.check_hung(clock.now()) is None

    def test_hung_flag_clears_on_return(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        sup.register_thread("t2")
        sup.poll(clock.now())
        clock.advance(fast_config.hung_threshold + 1.0)
        sup.check_hung(clock.now())
        clock.advance(1.0)
        sup.on_testpoint(clock.now(), "t1", 0, [0.0])
        assert not sup.is_hung("t1")


def drive_cycles(sup, clock, tid, cycles, spacing, counter=0.0):
    """Seat ``tid`` and run ``cycles`` release→testpoint intervals."""
    for _ in range(cycles):
        assert sup.poll(clock.now()) == tid
        clock.advance(spacing)
        counter += 1.0
        sup.on_testpoint(clock.now(), tid, 0, [counter])
    return counter


class TestWatchdog:
    """Early eviction of stalled threads (watchdog_multiplier > 0)."""

    def _config(self, fast_config, multiplier=5.0):
        return dataclasses.replace(fast_config, watchdog_multiplier=multiplier)

    def test_threshold_defaults_to_hung_threshold(self, fast_config, clock):
        sup = Supervisor(self._config(fast_config))
        sup.register_thread("t1")
        # No learned spacing yet: only the coarse hung threshold applies.
        assert sup.watchdog_threshold("t1") == fast_config.hung_threshold

    def test_threshold_learned_from_spacing(self, fast_config, clock):
        sup = Supervisor(self._config(fast_config, multiplier=5.0))
        sup.register_thread("t1")
        drive_cycles(sup, clock, "t1", cycles=4, spacing=0.2)
        assert sup.watchdog_threshold("t1") == pytest.approx(5.0 * 0.2)

    def test_threshold_capped_at_hung_threshold(self, fast_config, clock):
        sup = Supervisor(self._config(fast_config, multiplier=1e6))
        sup.register_thread("t1")
        drive_cycles(sup, clock, "t1", cycles=3, spacing=0.2)
        assert sup.watchdog_threshold("t1") == fast_config.hung_threshold

    def test_spacing_ema_updates(self, fast_config, clock):
        sup = Supervisor(self._config(fast_config))
        sup.register_thread("t1")
        drive_cycles(sup, clock, "t1", cycles=1, spacing=1.0)
        drive_cycles(sup, clock, "t1", cycles=1, spacing=2.0)
        # Exponential average: 0.7 * 1.0 + 0.3 * 2.0.
        assert sup.watchdog_threshold("t1") == pytest.approx(5.0 * 1.3)

    def test_stalled_owner_evicted_early(self, fast_config, clock):
        """A stall far below hung_threshold still frees the slot."""
        sup = Supervisor(self._config(fast_config, multiplier=5.0))
        sup.register_thread("t1")
        sup.register_thread("t2")
        counter = 0.0
        for _ in range(4):
            while sup.running is None:
                assert sup.poll(clock.now()) is not None
            tid = sup.running
            clock.advance(0.2)
            counter += 1.0
            sup.on_testpoint(clock.now(), tid, 0, [counter])
        seated = sup.poll(clock.now())
        assert seated is not None
        stall = 2.0  # well below hung_threshold (30s), above 5 * 0.2s
        assert stall < fast_config.hung_threshold
        clock.advance(stall)
        assert sup.check_hung(clock.now()) == seated
        assert sup.is_hung(seated)
        # The slot is free for the other thread.
        other = "t2" if seated == "t1" else "t1"
        assert sup.poll(clock.now()) == other

    def test_watchdog_eviction_forces_regulator_discard(self, fast_config, clock):
        """Below hung_threshold the regulator would measure the stall as a
        slow interval; the watchdog must tell it to discard instead."""
        sup = Supervisor(self._config(fast_config, multiplier=5.0))
        reg = sup.register_thread("t1")
        counter = drive_cycles(sup, clock, "t1", cycles=4, spacing=0.2)
        assert sup.poll(clock.now()) == "t1"
        clock.advance(2.0)
        assert sup.check_hung(clock.now()) == "t1"
        decision = sup.on_testpoint(clock.now(), "t1", 0, [counter + 1.0])
        assert decision.processed
        assert decision.anomaly == "watchdog_stall"
        assert reg.stats.forced_discards == 1

    def test_full_hung_eviction_does_not_force_discard(self, fast_config, clock):
        """Beyond hung_threshold the regulator's own hung discard applies."""
        sup = Supervisor(fast_config)  # multiplier 0: watchdog disabled
        reg = sup.register_thread("t1")
        counter = drive_cycles(sup, clock, "t1", cycles=4, spacing=0.2)
        assert sup.poll(clock.now()) == "t1"
        clock.advance(fast_config.hung_threshold + 1.0)
        assert sup.check_hung(clock.now()) == "t1"
        sup.on_testpoint(clock.now(), "t1", 0, [counter + 1.0])
        assert reg.stats.forced_discards == 0

    def test_no_early_eviction_without_multiplier(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        drive_cycles(sup, clock, "t1", cycles=4, spacing=0.2)
        assert sup.poll(clock.now()) == "t1"
        clock.advance(2.0)  # would trip a 5 * 0.2s watchdog
        assert sup.check_hung(clock.now()) is None

    def test_no_eviction_within_learned_spacing(self, fast_config, clock):
        sup = Supervisor(self._config(fast_config, multiplier=5.0))
        sup.register_thread("t1")
        drive_cycles(sup, clock, "t1", cycles=4, spacing=0.2)
        assert sup.poll(clock.now()) == "t1"
        clock.advance(0.5)  # below the 1.0s learned threshold
        assert sup.check_hung(clock.now()) is None

    def test_eviction_emits_anomaly_and_recovery(self, fast_config, clock):
        memory = MemorySink()
        sup = Supervisor(
            self._config(fast_config, multiplier=5.0),
            telemetry=Telemetry(sink=memory),
        )
        sup.register_thread("t1")
        drive_cycles(sup, clock, "t1", cycles=4, spacing=0.2)
        assert sup.poll(clock.now()) == "t1"
        clock.advance(2.0)
        sup.check_hung(clock.now())
        anomalies = [e for e in memory.events if e.kind == "anomaly"]
        recoveries = [e for e in memory.events if e.kind == "recovery"]
        assert anomalies and anomalies[-1].anomaly == "watchdog_stall"
        assert recoveries and recoveries[-1].action == "watchdog_release"
        assert [e for e in memory.events if e.kind == "slot_evicted"]


class TestUsageCharging:
    def test_run_interval_charged(self, fast_config, clock):
        sup = Supervisor(fast_config)
        sup.register_thread("t1")
        sup.poll(clock.now())
        clock.advance(2.0)
        sup.on_testpoint(clock.now(), "t1", 0, [0.0])
        # Internal arbiter usage should reflect the 2-second run (decayed
        # once on the next acquire, so just require it to be positive).
        assert sup.poll(clock.now()) == "t1"
