"""Regression tests for the PR-4 edge-case bugfix sweep.

Every test here fails against the pre-fix code:

* ``RateSample.rate`` used bare ``duration <= 0`` guards, so sub-epsilon
  durations manufactured absurd finite rates (~5e297) and negative
  durations silently produced negative rates.
* ``ExponentialAverager``/``SingleMetricCalibrator`` snapshots dropped the
  warm-up sample count, so a restored calibrator re-entered arithmetic
  warm-up and its post-restore updates diverged from the original's.
* ``SuspensionTimer`` had no persistence at all: restored regulators
  restarted the backoff schedule from ``initial``.
* ``expected_suspension``/``simulate_judgment_chain`` computed
  ``initial * 2.0 ** k`` directly — an :class:`OverflowError` for
  ``k >= 1024`` — and the chain simulator drew from the shared
  module-level ``random`` stream when no RNG was passed.
"""

from __future__ import annotations

import json
import math
import sys

import pytest

from repro.core.averaging import ExponentialAverager
from repro.core.calibration import SingleMetricCalibrator
from repro.core.config import DEFAULT_CONFIG
from repro.core.controller import ThreadRegulator
from repro.core.errors import ConfigError, MetricError
from repro.core.queueing import (
    derive_chain_rng,
    expected_suspension,
    simulate_judgment_chain,
)
from repro.core.rate import MIN_MEASURABLE_DURATION, RateSample
from repro.core.suspension import SuspensionTimer, capped_backoff


class TestRateZeroDurationContract:
    """Satellite 1: the §4.1-consistent zero-duration rate contract."""

    def test_zero_progress_zero_duration_is_zero(self):
        assert RateSample(0.0, 0.0, (0.0,)).rate(0) == 0.0

    def test_progress_over_zero_duration_is_inf(self):
        assert RateSample(0.0, 0.0, (5.0,)).rate(0) == math.inf

    def test_negative_zero_duration_matches_positive_zero(self):
        assert RateSample(0.0, -0.0, (0.0,)).rate(0) == 0.0
        assert RateSample(0.0, -0.0, (5.0,)).rate(0) == math.inf

    def test_sub_epsilon_duration_does_not_manufacture_finite_garbage(self):
        # Pre-fix, a sub-epsilon duration (clock jitter, not a real
        # interval) divided through and produced a "legitimate"-looking
        # finite rate around 1e290 — poisoning the calibrator average.
        tiny = sys.float_info.epsilon / 2.0
        assert RateSample(0.0, tiny, (1e-20,)).rate(0) == math.inf
        assert RateSample(0.0, tiny, (0.0,)).rate(0) == 0.0

    def test_epsilon_boundary_is_the_threshold(self):
        at = RateSample(0.0, MIN_MEASURABLE_DURATION, (1.0,))
        above = RateSample(0.0, math.nextafter(MIN_MEASURABLE_DURATION, 1.0), (1.0,))
        assert at.rate(0) == math.inf
        assert math.isfinite(above.rate(0))

    def test_negative_duration_raises(self):
        with pytest.raises(MetricError):
            RateSample(0.0, -1.0, (1.0,)).rate(0)

    def test_nan_duration_raises(self):
        with pytest.raises(MetricError):
            RateSample(0.0, math.nan, (1.0,)).rate(0)


class TestAveragerWarmupPersistence:
    """Satellite 2a: warm-up counts survive snapshots bit-identically."""

    def test_roundtrip_mid_warmup_matches_original_updates(self):
        original = ExponentialAverager(window=10)
        for value in (4.0, 6.0, 5.0):
            original.update(value)
        clone = ExponentialAverager(window=10)
        clone.import_state(original.export_state())
        # Pre-fix the clone seeded count=window and went straight to EWMA
        # weighting while the original was still in arithmetic warm-up.
        for value in (9.0, 2.0, 7.5, 3.25):
            assert original.update(value) == clone.update(value)
        assert original.export_state() == clone.export_state()

    def test_empty_averager_roundtrip(self):
        original = ExponentialAverager(window=10)
        clone = ExponentialAverager(window=10)
        clone.import_state(original.export_state())
        assert clone.value is None
        assert original.update(1.5) == clone.update(1.5)

    def test_import_rejects_garbage(self):
        averager = ExponentialAverager(window=10)
        with pytest.raises(MetricError):
            averager.import_state({"value": math.nan, "count": 3})
        with pytest.raises(MetricError):
            averager.import_state({"value": 1.0, "count": 0})

    def test_import_clamps_count_to_window(self):
        averager = ExponentialAverager(window=4)
        averager.import_state({"value": 2.0, "count": 999})
        reference = ExponentialAverager(window=4)
        for _ in range(50):
            reference.update(2.0)
        assert averager.update(6.0) == reference.update(6.0)


class TestCalibratorSamplePersistence:
    """Satellite 2b: calibrator snapshots carry the sample count."""

    def test_roundtrip_preserves_subsequent_targets(self):
        original = SingleMetricCalibrator(window=8)
        for dp in (10.0, 12.0, 11.0):
            original.update(1.0, (dp,))
        clone = SingleMetricCalibrator(window=8)
        clone.import_state(original.export_state())
        assert clone.sample_count == original.sample_count
        for dp in (14.0, 9.0, 13.0, 10.5):
            original.update(1.0, (dp,))
            clone.update(1.0, (dp,))
            assert original.target_duration((10.0,)) == clone.target_duration((10.0,))

    def test_legacy_snapshot_without_samples_still_imports(self):
        calibrator = SingleMetricCalibrator(window=8)
        calibrator.import_state({"rate": 42.0})
        # Legacy restart semantics: the rate carries full window weight.
        assert calibrator.sample_count == 8
        assert calibrator.target_duration((42.0,)) > 0.0

    def test_import_rejects_bad_sample_count(self):
        calibrator = SingleMetricCalibrator(window=8)
        state = {"rate": 1.0, "samples": 0}
        with pytest.raises(MetricError):
            calibrator.import_state(state)


class TestSuspensionTimerPersistence:
    """Satellite 3: saturation-safe timer snapshots and overflow-free law."""

    def test_roundtrip_preserves_saturation(self):
        timer = SuspensionTimer(initial=1.0, maximum=8.0)
        for _ in range(10):
            timer.on_poor()
        assert timer.saturated
        clone = SuspensionTimer(initial=1.0, maximum=8.0)
        clone.import_state(timer.export_state())
        assert clone.saturated
        assert clone.consecutive_poor == timer.consecutive_poor
        # Pre-fix the restored timer restarted at `initial`.
        assert clone.on_poor() == 8.0

    def test_good_after_restored_saturation_fully_resets(self):
        timer = SuspensionTimer(initial=1.0, maximum=8.0)
        for _ in range(10):
            timer.on_poor()
        clone = SuspensionTimer(initial=1.0, maximum=8.0)
        clone.import_state(timer.export_state())
        clone.on_good()
        assert clone.current == 1.0
        assert clone.consecutive_poor == 0
        assert clone.on_poor() == 1.0

    def test_import_clamps_into_configured_band(self):
        timer = SuspensionTimer(initial=2.0, maximum=16.0)
        timer.import_state({"current": 1e9, "consecutive_poor": 3})
        assert timer.current == 16.0
        timer.import_state({"current": 0.001, "consecutive_poor": 0})
        assert timer.current == 2.0

    def test_import_rejects_nan_and_negative_count(self):
        timer = SuspensionTimer()
        with pytest.raises(ConfigError):
            timer.import_state({"current": math.nan})
        with pytest.raises(ConfigError):
            timer.import_state({"current": 1.0, "consecutive_poor": -1})

    def test_capped_backoff_no_overflow_at_huge_k(self):
        # Pre-fix: 2.0 ** 2048 raised OverflowError.
        assert capped_backoff(1.0, 2048, 256.0) == 256.0
        assert capped_backoff(1.0, 5000, math.inf) == math.inf

    def test_capped_backoff_silent_float_overflow(self):
        # initial * 2**k overflows to inf before k hits 1024; must clamp.
        assert capped_backoff(1e300, 100, 1e308) == 1e308

    def test_capped_backoff_matches_naive_formula_in_range(self):
        for k in range(0, 60):
            assert capped_backoff(0.5, k, 1e12) == min(0.5 * 2.0**k, 1e12)


class TestQueueingOverflowAndRngIsolation:
    """Satellites 3+4: overflow-safe analytics, isolated chain RNG."""

    def test_expected_suspension_finite_at_huge_k_max(self):
        # Pre-fix: OverflowError from 2.0 ** k inside the sum.
        value = expected_suspension(0.05, 0.2, maximum=256.0, k_max=2048)
        assert math.isfinite(value) and value > 0.0

    def test_chain_survives_doubling_past_float_exponent_range(self):
        result = simulate_judgment_chain(
            0.999, 0.0005, judgments=1500, maximum=256.0, seed=9
        )
        assert math.isfinite(result.suspended_time)

    def test_seeded_chain_is_reproducible(self):
        a = simulate_judgment_chain(0.05, 0.2, judgments=200, seed=77)
        b = simulate_judgment_chain(0.05, 0.2, judgments=200, seed=77)
        assert a == b

    def test_distinct_seeds_diverge(self):
        a = simulate_judgment_chain(0.05, 0.2, judgments=200, seed=1)
        b = simulate_judgment_chain(0.05, 0.2, judgments=200, seed=2)
        assert a != b

    def test_seed_and_rng_are_mutually_exclusive(self):
        import random

        with pytest.raises(ValueError):
            simulate_judgment_chain(
                0.05, 0.2, judgments=10, rng=random.Random(1), seed=1
            )

    def test_derive_chain_rng_is_seed_stable(self):
        assert derive_chain_rng(5).random() == derive_chain_rng(5).random()
        assert derive_chain_rng(5).random() != derive_chain_rng(6).random()

    def test_chain_does_not_touch_module_level_random(self):
        # Pre-fix, an unseeded call consumed the shared `random` stream:
        # identical global seeds produced different follow-on draws.
        import random

        random.seed(123)
        simulate_judgment_chain(0.05, 0.2, judgments=50, seed=4)
        after_chain = random.random()
        random.seed(123)
        assert random.random() == after_chain


class TestControllerStateRoundtrip:
    """Satellite 2c: a restored regulator replays the verdict stream."""

    @staticmethod
    def _config():
        return DEFAULT_CONFIG.with_overrides(
            bootstrap_testpoints=6, min_testpoint_interval=0.0
        )

    @staticmethod
    def _drive(regulator, now, progress, steps, honour=True):
        decisions = []
        for i in range(steps):
            progress += 10.0 + (i % 4)
            decision = regulator.on_testpoint(now, 0, (progress,))
            decisions.append(decision)
            now += (decision.delay if honour else 0.0) + 0.5
        return decisions, now, progress

    def test_mid_stream_roundtrip_replays_identically(self):
        original = ThreadRegulator(config=self._config(), start_time=0.0)
        _, now, progress = self._drive(original, 0.0, 0.0, 40)

        snapshot = original.export_state(include_runtime=True)
        assert json.loads(json.dumps(snapshot)) == snapshot  # strictly JSON-safe
        clone = ThreadRegulator(config=self._config())
        clone.import_state(snapshot)

        expected, _, _ = self._drive(original, now, progress, 40)
        actual, _, _ = self._drive(clone, now, progress, 40)
        assert expected == actual

    def test_runtime_snapshot_roundtrips_bit_identically(self):
        regulator = ThreadRegulator(config=self._config(), start_time=0.0)
        self._drive(regulator, 0.0, 0.0, 25)
        snapshot = regulator.export_state(include_runtime=True)
        clone = ThreadRegulator(config=self._config())
        clone.import_state(snapshot)
        assert json.dumps(clone.export_state(include_runtime=True), sort_keys=True) == (
            json.dumps(snapshot, sort_keys=True)
        )

    def test_legacy_bare_sets_snapshot_still_skips_bootstrap(self):
        regulator = ThreadRegulator(config=self._config(), start_time=0.0)
        self._drive(regulator, 0.0, 0.0, 30)
        legacy = {"sets": regulator.export_state()["sets"]}
        clone = ThreadRegulator(config=self._config(), start_time=0.0)
        clone.import_state(legacy)
        assert (
            clone.export_state()["processed_testpoints"]
            >= self._config().bootstrap_testpoints
        )

    def test_suspension_saturation_survives_regulator_roundtrip(self):
        regulator = ThreadRegulator(config=self._config(), start_time=0.0)
        self._drive(regulator, 0.0, 0.0, 10)
        for _ in range(20):
            regulator._suspension.on_poor()
        snapshot = regulator.export_state(include_runtime=True)
        clone = ThreadRegulator(config=self._config())
        clone.import_state(snapshot)
        assert clone._suspension.current == regulator._suspension.current
        assert (
            clone._suspension.consecutive_poor
            == regulator._suspension.consecutive_poor
        )
