"""The per-thread regulation state machine."""

from __future__ import annotations

import pytest

from repro.core.clock import ManualClock
from repro.core.config import MannersConfig
from repro.core.controller import ThreadRegulator
from repro.core.errors import MetricError
from repro.core.signtest import Judgment


def drive(
    regulator: ThreadRegulator,
    clock: ManualClock,
    rate: float,
    steps: int,
    dt: float = 0.1,
    counter_start: float | None = None,
    honor_delays: bool = True,
):
    """Run ``steps`` testpoints at a constant true progress rate.

    Returns (decisions, final_counter).
    """
    counter = counter_start if counter_start is not None else 0.0
    decisions = []
    for _ in range(steps):
        clock.advance(dt)
        counter += rate * dt
        decision = regulator.on_testpoint(clock.now(), 0, [counter])
        decisions.append(decision)
        if honor_delays and decision.delay > 0:
            clock.advance(decision.delay)
    return decisions, counter


class TestBasicFlow:
    def test_priming_testpoint(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        decision = reg.on_testpoint(clock.now(), 0, [0.0])
        assert decision.processed
        assert decision.judgment is None
        assert decision.delay == 0.0

    def test_lightweight_gate(self, clock):
        cfg = MannersConfig(min_testpoint_interval=0.5, probation_period=0.0)
        reg = ThreadRegulator(cfg)
        reg.on_testpoint(clock.now(), 0, [0.0])
        clock.advance(0.1)
        decision = reg.on_testpoint(clock.now(), 0, [1.0])
        assert not decision.processed
        assert reg.stats.lightweight == 1

    def test_bootstrap_never_suspends(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        # The priming call is processed testpoint #1, so bootstrap covers
        # the next bootstrap_testpoints - 1 measured testpoints.
        decisions, _ = drive(
            reg, clock, rate=100.0, steps=fast_config.bootstrap_testpoints - 1
        )
        assert all(d.delay == 0.0 for d in decisions)
        assert all(d.judgment is None for d in decisions)

    def test_steady_rate_mostly_good(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        drive(reg, clock, rate=100.0, steps=300)
        assert reg.stats.good_judgments > 0
        # Type-I errors are rare (alpha = 0.05 per judgment).
        total = reg.stats.good_judgments + reg.stats.poor_judgments
        assert reg.stats.poor_judgments <= max(2, int(0.15 * total))

    def test_degraded_rate_triggers_backoff(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        _, counter = drive(reg, clock, rate=100.0, steps=100)
        decisions, _ = drive(
            reg, clock, rate=30.0, steps=40, counter_start=counter, honor_delays=True
        )
        poor = [d for d in decisions if d.judgment is Judgment.POOR]
        assert poor, "sustained degradation must be recognized"
        delays = [d.delay for d in poor]
        # Exponential doubling, capped.
        for first, second in zip(delays, delays[1:]):
            assert second == pytest.approx(min(first * 2.0, 64.0))

    def test_recovery_resets_suspension(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        _, counter = drive(reg, clock, rate=100.0, steps=100)
        _, counter = drive(reg, clock, rate=20.0, steps=30, counter_start=counter)
        assert reg.suspension.current > fast_config.initial_suspension
        drive(reg, clock, rate=100.0, steps=60, counter_start=counter)
        assert reg.suspension.current == fast_config.initial_suspension


class TestDurationAccounting:
    def test_suspension_not_counted_as_slow_progress(self, clock, fast_config):
        """After a mandated delay, the next interval starts at the release
        time, so an honest post-suspension rate measures at target."""
        reg = ThreadRegulator(fast_config)
        _, counter = drive(reg, clock, rate=100.0, steps=100)
        # Force a poor phase to accumulate a suspension.
        decisions, counter = drive(reg, clock, rate=10.0, steps=20, counter_start=counter)
        # Resume at full rate: the regulator should quickly be satisfied.
        decisions, _ = drive(reg, clock, rate=100.0, steps=80, counter_start=counter)
        recovered = [d for d in decisions if d.judgment is Judgment.GOOD]
        assert recovered

    def test_counter_continuity_across_suspensions(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        c = 0.0
        for _ in range(50):
            clock.advance(0.1)
            c += 10.0
            d = reg.on_testpoint(clock.now(), 0, [c])
            if d.delay:
                clock.advance(d.delay)
        assert reg.stats.processed == 50


class TestOffProtocol:
    def test_ignoring_suspension_is_subsampled(self, clock, fast_config):
        """An app that keeps running during mandated suspension has its
        measurements excluded from calibration (section 4.3)."""
        reg = ThreadRegulator(fast_config)
        _, counter = drive(reg, clock, rate=100.0, steps=100)
        # Degrade and refuse to honor the delays.
        count = reg.stats.off_protocol_samples
        saw_delay = False
        for _ in range(40):
            clock.advance(0.1)
            counter += 3.0
            decision = reg.on_testpoint(clock.now(), 0, [counter])
            if decision.delay > 0:
                saw_delay = True
            # Deliberately do NOT advance the clock by the delay.
        assert saw_delay
        assert reg.stats.off_protocol_samples > count

    def test_off_protocol_samples_not_calibrated(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        _, counter = drive(reg, clock, rate=100.0, steps=100)
        off_protocol_seen = 0
        for _ in range(40):
            clock.advance(0.1)
            counter += 3.0
            decision = reg.on_testpoint(clock.now(), 0, [counter])
            if decision.off_protocol:
                off_protocol_seen += 1
                assert not decision.calibrated
        assert off_protocol_seen > 0


class TestHungThreads:
    def test_long_gap_discarded(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        drive(reg, clock, rate=100.0, steps=50)
        clock.advance(fast_config.hung_threshold + 5.0)
        decision = reg.on_testpoint(clock.now(), 0, [1e9])
        assert decision.discarded_hung
        assert decision.judgment is None
        assert not decision.calibrated
        assert reg.stats.hung_discards == 1

    def test_gap_within_threshold_not_discarded(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        drive(reg, clock, rate=100.0, steps=50)
        clock.advance(fast_config.hung_threshold - 1.0)
        decision = reg.on_testpoint(clock.now(), 0, [1e9])
        assert not decision.discarded_hung


class TestProbation:
    def test_probation_caps_duty_cycle(self, clock):
        cfg = MannersConfig(
            bootstrap_testpoints=1,
            probation_period=1000.0,
            probation_duty=0.25,
            averaging_n=100,
            min_testpoint_interval=0.0,
        )
        reg = ThreadRegulator(cfg)
        reg.on_testpoint(clock.now(), 0, [0.0])
        executing = 0.0
        suspended = 0.0
        counter = 0.0
        for _ in range(100):
            clock.advance(0.1)
            executing += 0.1
            counter += 10.0
            decision = reg.on_testpoint(clock.now(), 0, [counter])
            if decision.delay > 0:
                clock.advance(decision.delay)
                suspended += decision.delay
        duty = executing / (executing + suspended)
        assert duty == pytest.approx(0.25, rel=0.15)

    def test_probation_expires(self, clock):
        cfg = MannersConfig(
            bootstrap_testpoints=1,
            probation_period=5.0,
            probation_duty=0.25,
            averaging_n=100,
            min_testpoint_interval=0.0,
        )
        reg = ThreadRegulator(cfg)
        reg.on_testpoint(clock.now(), 0, [0.0])
        assert reg.in_probation(clock.now())
        clock.advance(10.0)
        assert not reg.in_probation(clock.now())


class TestMultipleMetricSets:
    def test_phased_sets_allocate_lazily(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        c0 = c1 = 0.0
        for i in range(60):
            clock.advance(0.1)
            if i % 2 == 0:
                c0 += 10.0
                reg.on_testpoint(clock.now(), 0, [c0])
            else:
                c1 += 3.0
                reg.on_testpoint(clock.now(), 1, [c1])
        assert reg.metric_set_indices() == (0, 1)

    def test_arity_fixed_per_set(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        reg.on_testpoint(clock.now(), 0, [0.0, 0.0])
        clock.advance(0.2)
        with pytest.raises(MetricError):
            reg.on_testpoint(clock.now(), 0, [1.0])

    def test_counter_regression_rejected(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        reg.on_testpoint(clock.now(), 0, [10.0])
        clock.advance(0.2)
        with pytest.raises(MetricError):
            reg.on_testpoint(clock.now(), 0, [5.0])


class TestPersistenceIntegration:
    def test_export_import_skips_bootstrap(self, clock, fast_config):
        donor = ThreadRegulator(fast_config)
        drive(donor, clock, rate=100.0, steps=100)
        state = donor.export_state()

        fresh = ThreadRegulator(fast_config)
        fresh.import_state(state)
        assert not fresh.in_bootstrap

    def test_imported_targets_regulate_immediately(self, fast_config):
        clock_a = ManualClock()
        donor = ThreadRegulator(fast_config)
        drive(donor, clock_a, rate=100.0, steps=200)

        clock_b = ManualClock()
        heir = ThreadRegulator(fast_config)
        heir.import_state(donor.export_state())
        # Degraded progress should be condemned quickly on the heir.
        decisions, _ = drive(heir, clock_b, rate=20.0, steps=30)
        assert any(d.judgment is Judgment.POOR for d in decisions)
