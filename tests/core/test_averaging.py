"""Exponential averaging (paper section 6.2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.averaging import ExponentialAverager, decay_from_window, window_from_decay
from repro.core.errors import ConfigError


class TestDecayConversion:
    def test_eq5(self):
        assert decay_from_window(10_000) == pytest.approx(0.9999)
        assert decay_from_window(2) == pytest.approx(0.5)

    def test_round_trip(self):
        for n in (2, 10, 100, 10_000):
            assert window_from_decay(decay_from_window(n)) == pytest.approx(n)

    def test_domain_checks(self):
        with pytest.raises(ConfigError):
            decay_from_window(1)
        with pytest.raises(ConfigError):
            window_from_decay(1.0)
        with pytest.raises(ConfigError):
            window_from_decay(-0.1)


class TestAverager:
    def test_first_sample_is_exact(self):
        avg = ExponentialAverager(window=100)
        assert avg.update(42.0) == 42.0

    def test_warmup_is_arithmetic_mean(self):
        avg = ExponentialAverager(window=100)
        for v in (10.0, 20.0, 30.0):
            avg.update(v)
        assert avg.value == pytest.approx(20.0)

    def test_steady_state_uses_eq4(self):
        avg = ExponentialAverager(window=4)
        for _ in range(4):
            avg.update(8.0)
        # Warmed up: next update is theta*r + (1-theta)*sample.
        avg.update(0.0)
        assert avg.value == pytest.approx(0.75 * 8.0)

    def test_seed_installs_full_weight(self):
        avg = ExponentialAverager(window=1000)
        avg.seed(5.0)
        avg.update(6.0)
        # A single sample against a seeded value moves it by 1/n only.
        assert avg.value == pytest.approx(5.0 + 1.0 / 1000.0, rel=1e-6)

    def test_rejects_non_finite(self):
        avg = ExponentialAverager(window=10)
        with pytest.raises(ValueError):
            avg.update(math.nan)
        with pytest.raises(ValueError):
            avg.seed(math.inf)

    def test_value_none_before_samples(self):
        assert ExponentialAverager(window=10).value is None

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=300), st.integers(2, 500))
    def test_bounded_by_sample_range(self, samples, window):
        """The average never escapes the convex hull of its samples."""
        avg = ExponentialAverager(window=window)
        for s in samples:
            avg.update(s)
        assert min(samples) - 1e-6 <= avg.value <= max(samples) + 1e-6

    @given(st.floats(-1e3, 1e3), st.integers(2, 100))
    def test_converges_to_constant_stream(self, value, window):
        avg = ExponentialAverager(window=window)
        avg.update(value + 100.0)
        for _ in range(window * 12):
            avg.update(value)
        assert avg.value == pytest.approx(value, abs=max(1.0, abs(value)) * 0.01)

    def test_tracks_level_shift(self):
        avg = ExponentialAverager(window=50)
        for _ in range(100):
            avg.update(10.0)
        for _ in range(500):
            avg.update(20.0)
        assert avg.value == pytest.approx(20.0, rel=0.01)
