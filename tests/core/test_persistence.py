"""Persistent target storage."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import PersistenceError
from repro.core.persistence import FORMAT_VERSION, TargetStore


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        store = TargetStore(tmp_path)
        state = {"sets": {"0": {"arity": 1, "calibration": {"rate": 125.0}}}}
        store.save("defrag", state)
        assert store.load("defrag") == state

    def test_missing_file_is_none(self, tmp_path):
        assert TargetStore(tmp_path).load("nothing") is None

    def test_overwrite(self, tmp_path):
        store = TargetStore(tmp_path)
        store.save("app", {"v": 1})
        store.save("app", {"v": 2})
        assert store.load("app") == {"v": 2}

    def test_delete(self, tmp_path):
        store = TargetStore(tmp_path)
        store.save("app", {})
        assert store.delete("app")
        assert not store.delete("app")
        assert store.load("app") is None

    def test_creates_directory(self, tmp_path):
        store = TargetStore(tmp_path / "sub" / "dir")
        store.save("app", {"x": 1})
        assert store.load("app") == {"x": 1}


class TestFileFormat:
    def test_version_embedded(self, tmp_path):
        store = TargetStore(tmp_path)
        path = store.save("app", {"x": 1})
        document = json.loads(path.read_text())
        assert document["version"] == FORMAT_VERSION
        assert document["app_id"] == "app"

    def test_app_id_sanitized(self, tmp_path):
        store = TargetStore(tmp_path)
        path = store.path_for("C:\\Program Files\\defrag.exe")
        assert "/" not in path.name.replace(path.suffix, "")
        assert path.parent == tmp_path

    def test_unusable_app_id_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            TargetStore(tmp_path).path_for("///")

    def test_no_temp_files_left_behind(self, tmp_path):
        store = TargetStore(tmp_path)
        store.save("app", {"x": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestCorruption:
    def test_corrupt_json_raises_when_strict(self, tmp_path):
        store = TargetStore(tmp_path)
        store.path_for("app").write_text("{not json")
        with pytest.raises(PersistenceError):
            store.load("app")

    def test_corrupt_json_tolerated_when_lenient(self, tmp_path):
        store = TargetStore(tmp_path, strict=False)
        store.path_for("app").write_text("{not json")
        assert store.load("app") is None

    def test_wrong_version_rejected(self, tmp_path):
        store = TargetStore(tmp_path)
        store.path_for("app").write_text(
            json.dumps({"version": 999, "state": {}})
        )
        with pytest.raises(PersistenceError):
            store.load("app")

    def test_missing_state_rejected(self, tmp_path):
        store = TargetStore(tmp_path)
        store.path_for("app").write_text(json.dumps({"version": FORMAT_VERSION}))
        with pytest.raises(PersistenceError):
            store.load("app")

    def test_non_object_document_rejected(self, tmp_path):
        store = TargetStore(tmp_path)
        store.path_for("app").write_text(json.dumps([1, 2, 3]))
        with pytest.raises(PersistenceError):
            store.load("app")
