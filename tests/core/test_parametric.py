"""Parametric SPRT comparator (section 11 extension)."""

from __future__ import annotations

import random

import pytest

from repro.core.comparator import RateComparator, StatisticalComparator
from repro.core.errors import ConfigError, MetricError
from repro.core.parametric import ParametricComparator
from repro.core.signtest import Judgment


class TestBasicBehaviour:
    def test_satisfies_protocol(self):
        assert isinstance(ParametricComparator(), RateComparator)

    def test_strong_degradation_condemned_quickly(self):
        comp = ParametricComparator(degradation=1.5)
        verdicts = []
        for _ in range(10):
            verdicts.append(comp.observe(2.0, 1.0))
            if verdicts[-1] is Judgment.POOR:
                break
        assert Judgment.POOR in verdicts
        assert len(verdicts) <= 5

    def test_at_target_acquitted(self):
        comp = ParametricComparator()
        verdict = Judgment.INDETERMINATE
        for _ in range(50):
            verdict = comp.observe(1.0, 1.0)
            if verdict is not Judgment.INDETERMINATE:
                break
        assert verdict is Judgment.GOOD

    def test_judgment_resets_evidence(self):
        comp = ParametricComparator()
        while comp.observe(2.0, 1.0) is not Judgment.POOR:
            pass
        assert comp.sample_count == 0
        assert comp.log_likelihood_ratio == 0.0

    def test_zero_durations_are_uninformative(self):
        comp = ParametricComparator()
        assert comp.observe(0.0, 1.0) is Judgment.INDETERMINATE
        assert comp.observe(1.0, 0.0) is Judgment.INDETERMINATE

    def test_rejects_bad_inputs(self):
        comp = ParametricComparator()
        with pytest.raises(MetricError):
            comp.observe(-1.0, 1.0)
        with pytest.raises(MetricError):
            comp.observe(1.0, float("inf"))

    def test_validation(self):
        with pytest.raises(ConfigError):
            ParametricComparator(alpha=0.3, beta=0.2)
        with pytest.raises(ConfigError):
            ParametricComparator(degradation=1.0)
        with pytest.raises(ConfigError):
            ParametricComparator(sigma_window=2)


class TestResponsivenessVsSignTest:
    def _samples_to_condemn(self, comp, ratio, rng, cap=200):
        for i in range(1, cap + 1):
            noisy = ratio * rng.uniform(0.95, 1.05)
            if comp.observe(noisy, 1.0) is Judgment.POOR:
                return i
        return cap + 1

    def test_faster_than_sign_test_on_strong_evidence(self):
        """Section 11's claim: the parametric test reacts in fewer samples
        when the degradation is unambiguous."""
        rng = random.Random(1)
        parametric = ParametricComparator(alpha=0.05, beta=0.2)
        sign = StatisticalComparator(alpha=0.05, beta=0.2)
        n_parametric = self._samples_to_condemn(parametric, 3.0, rng)
        n_sign = self._samples_to_condemn(sign, 3.0, random.Random(1))
        assert n_sign == 5  # the sign test's hard minimum m
        assert n_parametric < n_sign

    def test_false_positive_rate_bounded_on_noisy_good_progress(self):
        """With mildly noisy at-target progress, condemnations stay rare."""
        rng = random.Random(2)
        comp = ParametricComparator(alpha=0.05, beta=0.2)
        poor = good = 0
        for _ in range(30_000):
            ratio = rng.lognormvariate(0.0, 0.25)
            verdict = comp.observe(ratio, 1.0)
            if verdict is Judgment.POOR:
                poor += 1
            elif verdict is Judgment.GOOD:
                good += 1
        assert good > 0
        assert poor / max(poor + good, 1) < 0.10

    def test_outliers_clamped(self):
        """A single enormous sample cannot condemn on its own."""
        comp = ParametricComparator(clamp=1.0)
        verdict = comp.observe(1000.0, 1.0)
        assert verdict is Judgment.INDETERMINATE
