"""Property-based tests: arbitration invariants under random schedules."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduling import MultiplexArbiter

KEYS = ("a", "b", "c", "d")


@st.composite
def arbiter_scripts(draw):
    """A random sequence of arbiter operations with advancing time."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["acquire", "release", "eligible", "charge", "priority", "peek"]
                ),
                st.sampled_from(KEYS),
                st.floats(0.0, 10.0),
            ),
            min_size=1,
            max_size=120,
        )
    )
    return ops


class TestArbiterInvariants:
    @settings(max_examples=100, deadline=None)
    @given(arbiter_scripts())
    def test_at_most_one_owner_and_eligibility_respected(self, ops):
        arbiter = MultiplexArbiter()
        for key in KEYS:
            arbiter.add(key)
        now = 0.0
        for op, key, value in ops:
            now += 0.1
            if op == "acquire":
                was_free = arbiter.owner is None
                owner = arbiter.acquire(now)
                if owner is not None and was_free:
                    # A newly seated owner must have been eligible; a
                    # sitting owner's eligibility may be set arbitrarily
                    # (it only matters at the next seating).
                    assert arbiter.eligible_at(owner) <= now
            elif op == "release":
                arbiter.release(key)
            elif op == "eligible":
                arbiter.set_eligible_at(key, now + value)
            elif op == "charge":
                arbiter.charge(key, value)
            elif op == "priority":
                arbiter.set_priority(key, int(value))
            elif op == "peek":
                peeked = arbiter.peek(now)
                if arbiter.owner is not None:
                    assert peeked == arbiter.owner
            # Core invariant: never more than one owner (trivially true by
            # representation, so assert the owner is a registered key).
            assert arbiter.owner is None or arbiter.owner in KEYS
            # Usage never goes negative.
            for k in KEYS:
                assert arbiter.usage(k) >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(arbiter_scripts())
    def test_priority_dominates_when_slot_free(self, ops):
        """Whenever acquire fills a free slot, no eligible candidate of
        strictly higher priority was passed over."""
        arbiter = MultiplexArbiter()
        for key in KEYS:
            arbiter.add(key)
        now = 0.0
        for op, key, value in ops:
            now += 0.1
            if op == "eligible":
                arbiter.set_eligible_at(key, now + value)
            elif op == "priority":
                arbiter.set_priority(key, int(value))
            elif op == "release":
                arbiter.release(key)
            elif op == "acquire":
                was_free = arbiter.owner is None
                owner = arbiter.acquire(now)
                if was_free and owner is not None:
                    for other in KEYS:
                        if other == owner:
                            continue
                        if arbiter.eligible_at(other) <= now:
                            assert arbiter.priority(other) <= arbiter.priority(owner)
