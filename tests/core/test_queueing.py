"""Analytic suspension model (section 6.1, Eqs. 1-3)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.errors import ConfigError
from repro.core.queueing import (
    duty_cycle,
    expected_backoff_factor,
    expected_suspension,
    is_stable,
    reaction_time,
    simulate_judgment_chain,
    steady_state_distribution,
    suspended_fraction,
)


class TestClosedForms:
    def test_stability_condition(self):
        assert is_stable(0.05, 0.2)
        assert not is_stable(0.2, 0.05)
        assert not is_stable(0.1, 0.1)

    def test_eq2_distribution_sums_to_one(self):
        p = steady_state_distribution(0.05, 0.2, k_max=200)
        assert sum(p) == pytest.approx(1.0, abs=1e-9)

    def test_eq2_geometric_shape(self):
        p = steady_state_distribution(0.05, 0.2, k_max=10)
        ratio = 0.05 / 0.25
        for k in range(10):
            assert p[k + 1] / p[k] == pytest.approx(ratio)

    def test_eq2_leading_term(self):
        p = steady_state_distribution(0.05, 0.2, k_max=0)
        assert p[0] == pytest.approx(0.2 / 0.25)

    def test_backoff_factor(self):
        assert expected_backoff_factor(0.05, 0.2) == pytest.approx(0.2 / 0.15)

    def test_backoff_diverges_when_unstable(self):
        assert expected_backoff_factor(0.2, 0.1) == math.inf

    def test_eq3_paper_values(self):
        """alpha=0.05, beta=0.2 => ~1% degradation (section 6.1)."""
        fraction = suspended_fraction(0.05, 0.2)
        assert 0.005 <= fraction <= 0.02

    def test_eq3_unstable_is_fully_suspended(self):
        assert suspended_fraction(0.3, 0.2) == 1.0

    def test_duty_cycle_complement(self):
        assert duty_cycle(0.05, 0.2) == pytest.approx(1.0 - suspended_fraction(0.05, 0.2))

    def test_reaction_time_paper_values(self):
        """A few hundred ms per testpoint => a few seconds reaction."""
        t = reaction_time(0.05, 0.3)
        assert 1.0 <= t <= 3.0

    def test_expected_suspension_uncapped(self):
        v = expected_suspension(0.05, 0.2, initial=1.0)
        assert v == pytest.approx(0.05 * 0.2 / 0.15)

    def test_expected_suspension_cap_reduces(self):
        uncapped = expected_suspension(0.05, 0.2, initial=1.0)
        capped = expected_suspension(0.05, 0.2, initial=1.0, maximum=4.0)
        assert capped <= uncapped + 1e-12

    def test_expected_suspension_cap_tames_instability(self):
        v = expected_suspension(0.3, 0.2, initial=1.0, maximum=16.0)
        assert math.isfinite(v)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            suspended_fraction(0.0, 0.2)
        with pytest.raises(ConfigError):
            reaction_time(0.05, 0.0)
        with pytest.raises(ValueError):
            steady_state_distribution(0.05, 0.2, k_max=-1)


class TestMonteCarloAgreement:
    def test_suspended_fraction_matches_eq3(self):
        result = simulate_judgment_chain(0.05, 0.2, judgments=60_000, rng=random.Random(3))
        expected = suspended_fraction(0.05, 0.2)
        assert result.suspended_fraction == pytest.approx(expected, rel=0.15)

    def test_state_distribution_matches_eq2(self):
        result = simulate_judgment_chain(0.05, 0.2, judgments=80_000, rng=random.Random(4))
        expected = steady_state_distribution(0.05, 0.2, k_max=3)
        observed = result.state_distribution
        for k in range(4):
            assert observed[k] == pytest.approx(expected[k], rel=0.1)

    def test_cap_bounds_empirical_suspension(self):
        capped = simulate_judgment_chain(
            0.05, 0.2, judgments=30_000, maximum=4.0, rng=random.Random(5)
        )
        uncapped = simulate_judgment_chain(
            0.05, 0.2, judgments=30_000, rng=random.Random(5)
        )
        assert capped.suspended_time <= uncapped.suspended_time

    def test_alpha_beta_tradeoff(self):
        """Increasing beta relative to alpha raises the duty cycle."""
        low_beta = simulate_judgment_chain(0.05, 0.1, judgments=40_000, rng=random.Random(6))
        high_beta = simulate_judgment_chain(0.05, 0.4, judgments=40_000, rng=random.Random(7))
        assert high_beta.suspended_fraction < low_beta.suspended_fraction


class TestOvershootModel:
    def test_no_overshoot_for_very_short_activity(self):
        from repro.core.queueing import suspension_overshoot

        # Activity ends during the first judgment phase.
        assert suspension_overshoot(1.0, judgment_time=1.5) == 0.0

    def test_overshoot_bounded_by_cap(self):
        from repro.core.queueing import suspension_overshoot, worst_case_overshoot

        for duration in (5.0, 30.0, 100.0, 300.0, 1000.0, 5000.0):
            overshoot = suspension_overshoot(duration, maximum=256.0)
            assert 0.0 <= overshoot <= worst_case_overshoot(256.0)

    def test_paper_magnitude(self):
        """A ~290 s activity (the Figure 7 database load) lands deep in
        the backoff ladder; the overshoot is a large fraction of the cap,
        matching the paper's ~220 s 'nearly worst case'."""
        from repro.core.queueing import suspension_overshoot

        overshoot = suspension_overshoot(290.0, initial=1.0, maximum=256.0,
                                         judgment_time=1.5)
        assert 100.0 <= overshoot <= 256.0

    def test_monotone_ladder_progression(self):
        """Longer activity can only reach equal-or-later ladder rungs, so
        the post-activity resume time is monotone in the duration."""
        from repro.core.queueing import suspension_overshoot

        previous_resume = 0.0
        for duration in range(1, 400, 7):
            overshoot = suspension_overshoot(float(duration))
            resume = duration + overshoot
            assert resume >= previous_resume - 1e-9
            previous_resume = resume

    def test_matches_fig7_simulation(self):
        """The deterministic model brackets the simulator's measured
        overshoot for the Figure 7 run (241 s at a ~289 s activity)."""
        from repro.core.queueing import suspension_overshoot

        model = suspension_overshoot(289.0, initial=1.0, maximum=256.0,
                                     judgment_time=1.5)
        assert abs(model - 241.0) < 130.0  # same ladder rung, coarse timing

    def test_validation(self):
        from repro.core.queueing import suspension_overshoot, worst_case_overshoot
        from repro.core.errors import ConfigError

        with pytest.raises(ValueError):
            suspension_overshoot(-1.0)
        with pytest.raises(ConfigError):
            suspension_overshoot(1.0, initial=0.0)
        with pytest.raises(ConfigError):
            worst_case_overshoot(0.0)
