"""Per-testpoint rate bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.errors import MetricError
from repro.core.rate import RateCalculator, RateSample


class TestRateCalculator:
    def test_priming_call_yields_no_sample(self):
        calc = RateCalculator(1)
        assert calc.observe(0.0, [0.0]) is None
        assert calc.primed

    def test_deltas_and_duration(self):
        calc = RateCalculator(2)
        calc.observe(0.0, [0.0, 100.0])
        sample = calc.observe(2.0, [10.0, 160.0])
        assert sample == RateSample(when=2.0, duration=2.0, deltas=(10.0, 60.0))
        assert sample.rate(0) == pytest.approx(5.0)
        assert sample.rate(1) == pytest.approx(30.0)

    def test_counters_are_cumulative(self):
        calc = RateCalculator(1)
        calc.observe(0.0, [0.0])
        calc.observe(1.0, [10.0])
        sample = calc.observe(3.0, [40.0])
        assert sample.deltas == (30.0,)

    def test_counter_regression_rejected(self):
        calc = RateCalculator(1)
        calc.observe(0.0, [10.0])
        with pytest.raises(MetricError, match="regressed"):
            calc.observe(1.0, [5.0])

    def test_time_regression_rejected(self):
        calc = RateCalculator(1)
        calc.observe(5.0, [0.0])
        with pytest.raises(MetricError):
            calc.observe(4.0, [1.0])

    def test_arity_mismatch_rejected(self):
        calc = RateCalculator(2)
        with pytest.raises(MetricError):
            calc.observe(0.0, [1.0])

    def test_non_finite_rejected(self):
        calc = RateCalculator(1)
        with pytest.raises(MetricError):
            calc.observe(0.0, [float("nan")])

    def test_rebase_discards_interval(self):
        """Hung-thread handling: the spanning interval yields no sample."""
        calc = RateCalculator(1)
        calc.observe(0.0, [0.0])
        calc.rebase(100.0, [50.0])
        sample = calc.observe(101.0, [60.0])
        assert sample.duration == pytest.approx(1.0)
        assert sample.deltas == (10.0,)

    def test_zero_arity_rejected(self):
        with pytest.raises(MetricError):
            RateCalculator(0)


class TestLenientMode:
    """``strict=False``: §4.1 discard-and-rebase instead of raising."""

    def test_strict_is_the_default(self):
        assert RateCalculator(1).strict
        assert not RateCalculator(1, strict=False).strict

    def test_backward_time_discarded_and_time_kept(self):
        calc = RateCalculator(1, strict=False)
        calc.observe(5.0, [10.0])
        assert calc.observe(3.0, [12.0]) is None
        assert calc.anomalies == 1
        assert calc.last_anomaly == "clock_backward"
        # The furthest time is kept so the next valid sample cannot span a
        # negative interval; the (valid) counters did rebase.
        sample = calc.observe(6.0, [15.0])
        assert sample.duration == pytest.approx(1.0)
        assert sample.deltas == (3.0,)

    def test_counter_regression_adopts_new_baseline(self):
        """An application restart resets its counters; adopt, don't die."""
        calc = RateCalculator(1, strict=False)
        calc.observe(0.0, [100.0])
        assert calc.observe(1.0, [5.0]) is None
        assert calc.last_anomaly == "counter_regression"
        sample = calc.observe(2.0, [8.0])
        assert sample.duration == pytest.approx(1.0)
        assert sample.deltas == (3.0,)

    def test_non_finite_counters_leave_baseline_untouched(self):
        calc = RateCalculator(1, strict=False)
        calc.observe(0.0, [0.0])
        assert calc.observe(1.0, [float("nan")]) is None
        assert calc.last_anomaly == "non_finite"
        # Garbage teaches nothing: the old baseline still anchors deltas.
        sample = calc.observe(2.0, [4.0])
        assert sample.duration == pytest.approx(2.0)
        assert sample.deltas == (4.0,)

    def test_non_finite_time_discarded(self):
        calc = RateCalculator(1, strict=False)
        calc.observe(0.0, [0.0])
        assert calc.observe(float("inf"), [1.0]) is None
        assert calc.anomalies == 1
        sample = calc.observe(1.0, [2.0])
        assert sample is not None

    def test_arity_mismatch_still_raises(self):
        """Wrong arity is a caller bug, not a measurement anomaly."""
        calc = RateCalculator(2, strict=False)
        with pytest.raises(MetricError):
            calc.observe(0.0, [1.0])
        assert calc.anomalies == 0

    def test_anomaly_counter_accumulates(self):
        calc = RateCalculator(1, strict=False)
        calc.observe(10.0, [0.0])
        calc.observe(5.0, [1.0])
        calc.observe(4.0, [2.0])
        calc.observe(11.0, [float("inf")])
        assert calc.anomalies == 3
        assert calc.last_anomaly == "non_finite"


class TestRateSample:
    def test_zero_duration_rates(self):
        sample = RateSample(when=1.0, duration=0.0, deltas=(5.0, 0.0))
        assert sample.rate(0) == float("inf")
        assert sample.rate(1) == 0.0

    def test_metric_out_of_range(self):
        sample = RateSample(when=1.0, duration=1.0, deltas=(5.0,))
        with pytest.raises(MetricError):
            sample.rate(1)
