"""Property tests for the suspension timer's backoff invariants (§4.1).

The clamp invariant — ``initial <= imposed <= maximum`` for every POOR
judgment, under any interleaving of judgments — is what keeps downstream
sleep/park math safe: no substrate ever receives a negative, zero, or
runaway suspension.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.core.suspension import SuspensionTimer

finite_positive = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestConstructionGuards:
    @pytest.mark.parametrize(
        "initial", [float("nan"), float("inf"), -1.0, 0.0, -float("inf")]
    )
    def test_bad_initial_rejected(self, initial):
        with pytest.raises(ConfigError):
            SuspensionTimer(initial=initial, maximum=10.0)

    @pytest.mark.parametrize("maximum", [float("nan"), float("inf"), 0.5])
    def test_bad_maximum_rejected(self, maximum):
        with pytest.raises(ConfigError):
            SuspensionTimer(initial=1.0, maximum=maximum)

    @given(initial=finite_positive, maximum=finite_positive)
    def test_construction_totality(self, initial, maximum):
        """Any finite positive pair either constructs or raises ConfigError."""
        if maximum >= initial:
            timer = SuspensionTimer(initial=initial, maximum=maximum)
            assert timer.current == initial
        else:
            with pytest.raises(ConfigError):
                SuspensionTimer(initial=initial, maximum=maximum)


@given(
    initial=finite_positive,
    factor=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    judgments=st.lists(st.sampled_from(["poor", "good", "none"]), max_size=60),
)
@settings(max_examples=200)
def test_imposed_suspension_always_in_band(initial, factor, judgments):
    """Every imposed suspension lies in ``[initial, maximum]`` and is finite."""
    maximum = initial * factor
    timer = SuspensionTimer(initial=initial, maximum=maximum)
    for judgment in judgments:
        if judgment == "poor":
            imposed = timer.on_poor()
            assert math.isfinite(imposed)
            assert initial <= imposed <= maximum
        elif judgment == "good":
            timer.on_good()
        assert math.isfinite(timer.current)
        assert initial <= timer.current <= maximum


@given(
    initial=finite_positive,
    factor=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    poors=st.integers(min_value=0, max_value=50),
)
def test_backoff_is_exponential_then_capped(initial, factor, poors):
    """The k-th consecutive poor imposes ``min(initial * 2**k, maximum)``."""
    maximum = initial * factor
    timer = SuspensionTimer(initial=initial, maximum=maximum)
    for k in range(poors):
        imposed = timer.on_poor()
        expected = min(initial * 2.0**k, maximum)
        assert imposed == pytest.approx(expected)
    assert timer.consecutive_poor == poors


@given(
    initial=finite_positive,
    factor=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    poors=st.integers(min_value=1, max_value=50),
)
def test_good_resets_fully(initial, factor, poors):
    timer = SuspensionTimer(initial=initial, maximum=initial * factor)
    for _ in range(poors):
        timer.on_poor()
    timer.on_good()
    assert timer.current == initial
    assert timer.consecutive_poor == 0
    assert timer.on_poor() == pytest.approx(initial)
