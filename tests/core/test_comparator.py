"""Rate comparators: statistical and direct."""

from __future__ import annotations

import pytest

from repro.core.comparator import DirectComparator, RateComparator, StatisticalComparator
from repro.core.errors import MetricError
from repro.core.signtest import Judgment


class TestStatisticalComparator:
    def test_needs_m_samples_for_poor(self):
        comp = StatisticalComparator(alpha=0.05, beta=0.2)
        verdicts = [comp.observe(2.0, 1.0) for _ in range(5)]
        assert verdicts[:4] == [Judgment.INDETERMINATE] * 4
        assert verdicts[4] is Judgment.POOR

    def test_good_after_three_above(self):
        comp = StatisticalComparator(alpha=0.05, beta=0.2)
        verdicts = [comp.observe(0.5, 1.0) for _ in range(3)]
        assert verdicts[-1] is Judgment.GOOD

    def test_equality_counts_as_at_target(self):
        """Section 4.1: 'at least as good as the target' is good."""
        comp = StatisticalComparator(alpha=0.05, beta=0.2)
        verdicts = [comp.observe(1.0, 1.0) for _ in range(3)]
        assert verdicts[-1] is Judgment.GOOD

    def test_mixed_samples_indeterminate(self):
        comp = StatisticalComparator(alpha=0.05, beta=0.2)
        for i in range(8):
            verdict = comp.observe(2.0 if i % 2 else 0.5, 1.0)
        assert verdict is Judgment.INDETERMINATE

    def test_reset_clears_window(self):
        comp = StatisticalComparator()
        comp.observe(2.0, 1.0)
        comp.reset()
        assert comp.sample_count == 0

    def test_rejects_bad_durations(self):
        comp = StatisticalComparator()
        with pytest.raises(MetricError):
            comp.observe(-1.0, 1.0)
        with pytest.raises(MetricError):
            comp.observe(1.0, float("inf"))

    def test_satisfies_protocol(self):
        assert isinstance(StatisticalComparator(), RateComparator)


class TestDirectComparator:
    def test_immediate_poor(self):
        comp = DirectComparator()
        assert comp.observe(1.1, 1.0) is Judgment.POOR

    def test_immediate_good(self):
        comp = DirectComparator()
        assert comp.observe(0.9, 1.0) is Judgment.GOOD
        assert comp.observe(1.0, 1.0) is Judgment.GOOD

    def test_never_indeterminate(self):
        comp = DirectComparator()
        for m, t in ((0.1, 1.0), (5.0, 1.0), (1.0, 1.0)):
            assert comp.observe(m, t) is not Judgment.INDETERMINATE

    def test_satisfies_protocol(self):
        assert isinstance(DirectComparator(), RateComparator)
