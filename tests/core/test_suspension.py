"""Exponential suspension timer (paper section 4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.core.suspension import SuspensionTimer


class TestDoubling:
    def test_first_poor_imposes_initial(self):
        timer = SuspensionTimer(initial=1.0, maximum=256.0)
        assert timer.on_poor() == 1.0

    def test_consecutive_poors_double(self):
        timer = SuspensionTimer(initial=1.0, maximum=256.0)
        imposed = [timer.on_poor() for _ in range(6)]
        assert imposed == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]

    def test_cap_is_respected(self):
        timer = SuspensionTimer(initial=1.0, maximum=8.0)
        imposed = [timer.on_poor() for _ in range(6)]
        assert imposed == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]
        assert timer.saturated

    def test_good_resets(self):
        timer = SuspensionTimer(initial=1.0, maximum=256.0)
        for _ in range(5):
            timer.on_poor()
        timer.on_good()
        assert timer.current == 1.0
        assert timer.consecutive_poor == 0
        assert timer.on_poor() == 1.0

    def test_consecutive_poor_counter(self):
        timer = SuspensionTimer()
        for k in range(4):
            assert timer.consecutive_poor == k
            timer.on_poor()

    def test_reset_alias(self):
        timer = SuspensionTimer()
        timer.on_poor()
        timer.reset()
        assert timer.current == timer.initial


class TestValidation:
    def test_initial_must_be_positive(self):
        with pytest.raises(ConfigError):
            SuspensionTimer(initial=0.0)

    def test_maximum_at_least_initial(self):
        with pytest.raises(ConfigError):
            SuspensionTimer(initial=4.0, maximum=2.0)


class TestInvariants:
    @given(
        st.floats(0.01, 100.0),
        st.floats(1.0, 1e6),
        st.lists(st.booleans(), max_size=60),
    )
    def test_k_th_poor_formula(self, initial, factor, events):
        """Imposed suspension is always min(initial * 2**k, maximum)."""
        maximum = initial * factor
        timer = SuspensionTimer(initial=initial, maximum=maximum)
        k = 0
        for poor in events:
            if poor:
                imposed = timer.on_poor()
                assert imposed == pytest.approx(min(initial * 2.0**k, maximum))
                k += 1
            else:
                timer.on_good()
                k = 0

    @given(st.lists(st.booleans(), max_size=100))
    def test_current_bounded(self, events):
        timer = SuspensionTimer(initial=0.5, maximum=32.0)
        for poor in events:
            timer.on_poor() if poor else timer.on_good()
            assert 0.5 <= timer.current <= 32.0
