"""The paired-sample sign test (paper section 6.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.core.signtest import (
    Judgment,
    SignTest,
    good_threshold,
    min_poor_samples,
    poor_threshold,
)


class TestThresholds:
    def test_paper_minimum_samples(self):
        # alpha = 0.05 => m = ceil(log2(20)) = 5 (section 6.1).
        assert min_poor_samples(0.05) == 5

    def test_minimum_samples_other_alphas(self):
        assert min_poor_samples(0.5) == 1
        assert min_poor_samples(0.25) == 2
        assert min_poor_samples(0.01) == 7

    def test_poor_threshold_at_minimum_window(self):
        m = min_poor_samples(0.05)
        # At the minimum window, only the all-below outcome is extreme enough.
        assert poor_threshold(m, 0.05) == m
        # Below the minimum window nothing can be judged poor.
        assert poor_threshold(m - 1, 0.05) == m  # == n + 1

    def test_good_threshold_small_windows(self):
        # One above-target sample is never enough at beta = 0.2.
        assert good_threshold(1, 0.2) == -1
        # Three consecutive above-target samples: P = 1/8 <= 0.2.
        assert good_threshold(3, 0.2) == 0

    @given(st.integers(1, 150))
    def test_thresholds_leave_indeterminate_gap_or_touch(self, n):
        lo = good_threshold(n, 0.2)
        hi = poor_threshold(n, 0.05)
        # The good region must never overlap the poor region.
        assert lo < hi

    @given(st.integers(1, 100), st.sampled_from([0.01, 0.05, 0.1, 0.3]))
    def test_poor_threshold_monotone_in_alpha(self, n, alpha):
        # A stricter (smaller) alpha demands at least as many below-target
        # samples.
        assert poor_threshold(n, alpha) >= poor_threshold(n, max(alpha, 0.3))

    @given(st.integers(2, 100))
    def test_poor_threshold_nonincreasing_in_n(self, n):
        # More data can only make it easier (never harder) to condemn.
        assert poor_threshold(n, 0.05) <= poor_threshold(n - 1, 0.05) + 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            poor_threshold(10, 0.0)
        with pytest.raises(ConfigError):
            good_threshold(10, 1.0)
        with pytest.raises(ValueError):
            poor_threshold(-1, 0.1)


class TestSequentialBehaviour:
    def test_all_below_judged_poor_at_m(self):
        test = SignTest(alpha=0.05, beta=0.2)
        verdicts = [test.add_sample(True) for _ in range(5)]
        assert verdicts[:4] == [Judgment.INDETERMINATE] * 4
        assert verdicts[4] is Judgment.POOR

    def test_all_above_judged_good(self):
        test = SignTest(alpha=0.05, beta=0.2)
        verdicts = []
        while not verdicts or verdicts[-1] is Judgment.INDETERMINATE:
            verdicts.append(test.add_sample(False))
        assert verdicts[-1] is Judgment.GOOD
        assert len(verdicts) == 3  # P(R <= 0 | 3) = 1/8 <= 0.2

    def test_window_resets_after_judgment(self):
        test = SignTest(alpha=0.05, beta=0.2)
        for _ in range(5):
            test.add_sample(True)
        assert test.sample_count == 0
        assert test.below_count == 0

    def test_window_cap_restarts_without_judgment(self):
        test = SignTest(alpha=0.05, beta=0.2, max_samples=8)
        # Alternate to stay indeterminate.
        verdicts = [test.add_sample(i % 2 == 0) for i in range(8)]
        assert all(v is Judgment.INDETERMINATE for v in verdicts)
        assert test.sample_count == 0  # restarted at the cap

    def test_evaluate_is_stateless(self):
        test = SignTest(alpha=0.05, beta=0.2)
        assert test.evaluate(5, 5) is Judgment.POOR
        assert test.evaluate(3, 0) is Judgment.GOOD
        assert test.evaluate(4, 2) is Judgment.INDETERMINATE
        assert test.evaluate(0, 0) is Judgment.INDETERMINATE

    def test_requires_alpha_beta_in_range(self):
        with pytest.raises(ConfigError):
            SignTest(alpha=0.0)
        with pytest.raises(ConfigError):
            SignTest(beta=1.0)
        with pytest.raises(ConfigError):
            SignTest(max_samples=2)


class TestThresholdTables:
    """The precomputed tables must be invisible except for speed."""

    def test_add_sample_never_walks_binomial_tails(self, monkeypatch):
        import repro.core.signtest as mod

        calls = {"sf": 0, "cdf": 0}
        real_sf, real_cdf = mod.binomial_sf, mod.binomial_cdf

        def counting_sf(n, r):
            calls["sf"] += 1
            return real_sf(n, r)

        def counting_cdf(n, r):
            calls["cdf"] += 1
            return real_cdf(n, r)

        monkeypatch.setattr(mod, "binomial_sf", counting_sf)
        monkeypatch.setattr(mod, "binomial_cdf", counting_cdf)
        # Unique parameters so neither the threshold lru_caches nor the
        # table cache can already hold this configuration.
        test = SignTest(alpha=0.0511, beta=0.2011, max_samples=96)
        calls["sf"] = calls["cdf"] = 0

        rng = random.Random(3)
        for _ in range(5000):
            test.add_sample(rng.random() < 0.5)
        assert calls == {"sf": 0, "cdf": 0}

    def test_tables_match_threshold_functions_across_exact_limit(self):
        # max_samples=512 spans the exact-binomial region (n <= 256) and
        # the normal-approximation region beyond it.
        test = SignTest(alpha=0.05, beta=0.2, max_samples=512)
        for n in range(513):
            assert test._poor_table[n] == poor_threshold(n, 0.05)
            assert test._good_table[n] == good_threshold(n, 0.2)

    def test_evaluate_matches_functions_for_all_window_sizes(self):
        test = SignTest(alpha=0.05, beta=0.2, max_samples=64)
        for n in range(1, 70):  # crosses max_samples: table and fallback paths
            for below in (0, n // 2, n):
                verdict = test.evaluate(n, below)
                if below >= poor_threshold(n, 0.05):
                    assert verdict is Judgment.POOR
                elif below <= good_threshold(n, 0.2):
                    assert verdict is Judgment.GOOD
                else:
                    assert verdict is Judgment.INDETERMINATE

    def test_tables_shared_between_instances(self):
        a = SignTest(alpha=0.05, beta=0.2, max_samples=128)
        b = SignTest(alpha=0.05, beta=0.2, max_samples=128)
        assert a._poor_table is b._poor_table
        assert a._good_table is b._good_table


class TestErrorRates:
    def test_type_one_error_rate_bounded(self):
        """When progress is genuinely good, POOR verdicts are rare."""
        rng = random.Random(7)
        test = SignTest(alpha=0.05, beta=0.2)
        poor = good = 0
        for _ in range(40_000):
            # Good progress: below target with probability 0.35 (< 0.5).
            verdict = test.add_sample(rng.random() < 0.35)
            if verdict is Judgment.POOR:
                poor += 1
            elif verdict is Judgment.GOOD:
                good += 1
        assert good > 0
        # The fraction of judgments that were poor must be small.
        assert poor / (poor + good) < 0.05

    def test_detects_genuinely_poor_progress(self):
        rng = random.Random(8)
        test = SignTest(alpha=0.05, beta=0.2)
        poor = good = 0
        for _ in range(10_000):
            verdict = test.add_sample(rng.random() < 0.9)  # mostly below
            if verdict is Judgment.POOR:
                poor += 1
            elif verdict is Judgment.GOOD:
                good += 1
        assert poor > 0
        assert good / max(poor + good, 1) < 0.05

    @given(st.integers(0, 2**32 - 1))
    def test_balanced_stream_terminates(self, seed):
        """Exactly-at-target progress must not wedge the test forever."""
        rng = random.Random(seed)
        test = SignTest(alpha=0.05, beta=0.2, max_samples=64)
        for _ in range(1000):
            test.add_sample(rng.random() < 0.5)
        # The window is bounded by the cap regardless of the stream.
        assert test.sample_count < 64
