"""Ridge regression over decayed sufficient statistics (section 6.3)."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError, MetricError
from repro.core.regression import RidgeCalibrator


def _feed(cal: RidgeCalibrator, rng: random.Random, costs, samples: int, noise: float = 0.0):
    """Feed samples generated from the linear model d = costs . dp."""
    for _ in range(samples):
        dp = [rng.uniform(0.0, 10.0) for _ in costs]
        d = sum(c * p for c, p in zip(costs, dp))
        if noise:
            d *= 1.0 + rng.gauss(0.0, noise)
        cal.update(max(d, 0.0), dp)


class TestRecovery:
    def test_recovers_single_metric_rate(self):
        cal = RidgeCalibrator(1, theta=0.99)
        rng = random.Random(1)
        _feed(cal, rng, [0.004], samples=500)  # 250 units/second
        assert cal.rates()[0] == pytest.approx(250.0, rel=0.05)

    def test_recovers_two_independent_metrics(self):
        cal = RidgeCalibrator(2, theta=0.995)
        rng = random.Random(2)
        _feed(cal, rng, [0.01, 0.002], samples=2000)
        c = cal.coefficients()
        # The ridge offset (nu = 0.1) deliberately perturbs the solution
        # (the paper accepts an order-of-magnitude-of-round-off error), so
        # the *split* between metrics is approximate...
        assert c[0] == pytest.approx(0.01, rel=0.25)
        assert c[1] == pytest.approx(0.002, rel=0.6)
        # ...but predicted durations must stay accurate.
        assert cal.target_duration([5.0, 5.0]) == pytest.approx(
            5.0 * 0.012, rel=0.1
        )

    def test_paper_worked_example(self):
        """Section 4.4: 750 kB/s scanning + 120 indices/s."""
        cal = RidgeCalibrator(2, theta=0.995)
        rng = random.Random(3)
        scan_cost = 1.0 / 750_000.0
        index_cost = 1.0 / 120.0
        for _ in range(3000):
            kb = rng.uniform(10_000, 100_000)
            idx = rng.uniform(0, 20)
            cal.update(kb * scan_cost + idx * index_cost, [kb, idx])
        # 60 kB + 5 indices should take ~80 + ~42 = ~122 ms.
        assert cal.target_duration([60_000, 5]) == pytest.approx(0.1217, rel=0.05)

    def test_correlated_metrics_stay_stable(self):
        """Perfectly collinear metrics must not blow up (ridge, Eq. 13-14)."""
        cal = RidgeCalibrator(2, theta=0.99, nu=0.1)
        rng = random.Random(4)
        for _ in range(1000):
            ops = rng.uniform(1, 10)
            cal.update(0.01 * ops, [ops, ops * 65536.0])  # bytes = 64K * ops
        c = cal.coefficients()
        assert np.isfinite(c).all()
        # Whatever the split, predicted durations must match reality.
        assert cal.target_duration([4.0, 4.0 * 65536.0]) == pytest.approx(0.04, rel=0.05)

    def test_aggregate_scale_is_pinned(self):
        """Predicted total duration tracks observed total (bias control)."""
        cal = RidgeCalibrator(2, theta=0.999, nu=0.1)
        rng = random.Random(5)
        total_d = 0.0
        total_dp = np.zeros(2)
        for _ in range(800):
            dp = np.array([rng.uniform(1, 5), rng.uniform(0, 3)])
            d = 0.02 * dp[0] + 0.05 * dp[1]
            d *= 1.0 + rng.gauss(0, 0.2)
            d = max(d, 1e-6)
            cal.update(d, dp)
            total_d += d
            total_dp += dp
        c = cal.coefficients()
        # Mean predicted vs mean observed within a few percent.
        assert float(np.dot(c, total_dp)) == pytest.approx(total_d, rel=0.1)


class TestValidationAndState:
    def test_arity_checked(self):
        cal = RidgeCalibrator(2, theta=0.9)
        with pytest.raises(MetricError):
            cal.update(1.0, [1.0])
        with pytest.raises(MetricError):
            cal.target_duration([1.0, 2.0, 3.0])

    def test_negative_inputs_rejected(self):
        cal = RidgeCalibrator(1, theta=0.9)
        with pytest.raises(MetricError):
            cal.update(-1.0, [1.0])
        with pytest.raises(MetricError):
            cal.update(1.0, [-1.0])

    def test_constructor_validation(self):
        with pytest.raises(MetricError):
            RidgeCalibrator(0, theta=0.9)
        with pytest.raises(ConfigError):
            RidgeCalibrator(1, theta=1.0)
        with pytest.raises(ConfigError):
            RidgeCalibrator(1, theta=0.9, nu=-1.0)

    def test_before_any_sample(self):
        cal = RidgeCalibrator(2, theta=0.9)
        assert cal.target_duration([1.0, 1.0]) == 0.0
        assert (cal.coefficients() == 0.0).all()

    def test_state_round_trip(self):
        cal = RidgeCalibrator(2, theta=0.99)
        rng = random.Random(6)
        _feed(cal, rng, [0.01, 0.002], samples=400)
        state = cal.export_state()
        clone = RidgeCalibrator(2, theta=0.99)
        clone.import_state(state)
        probe = [3.0, 7.0]
        assert clone.target_duration(probe) == pytest.approx(
            cal.target_duration(probe)
        )

    def test_import_rejects_wrong_arity(self):
        cal = RidgeCalibrator(2, theta=0.99)
        state = cal.export_state()
        other = RidgeCalibrator(3, theta=0.99)
        with pytest.raises(MetricError):
            other.import_state(state)

    def test_import_rejects_non_finite(self):
        cal = RidgeCalibrator(1, theta=0.9)
        with pytest.raises(MetricError):
            cal.import_state({"x": [[float("nan")]], "y": [0.0]})


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(1e-4, 1.0), min_size=1, max_size=4),
        st.integers(0, 10_000),
    )
    def test_rates_always_positive_finite_costs(self, costs, seed):
        cal = RidgeCalibrator(len(costs), theta=0.99)
        rng = random.Random(seed)
        _feed(cal, rng, costs, samples=150, noise=0.1)
        c = cal.coefficients()
        assert np.isfinite(c).all()
        assert (c >= 0.0).all()
        rates = cal.rates()
        assert (rates > 0).all()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_target_duration_linear_in_deltas(self, seed):
        cal = RidgeCalibrator(2, theta=0.99)
        rng = random.Random(seed)
        _feed(cal, rng, [0.01, 0.03], samples=100, noise=0.05)
        a = cal.target_duration([1.0, 2.0])
        b = cal.target_duration([2.0, 4.0])
        assert b == pytest.approx(2.0 * a, rel=1e-9)
