"""The single-call Manners facade."""

from __future__ import annotations

import pytest

from repro.core.clock import ManualClock
from repro.core.library import Manners
from repro.core.persistence import TargetStore
from repro.core.signtest import Judgment


def drive_manners(
    manners: Manners,
    clock: ManualClock,
    rate: float,
    steps: int,
    dt: float = 0.1,
    counter_start: float = 0.0,
):
    counter = counter_start
    pauses = []
    for _ in range(steps):
        clock.advance(dt)
        counter += rate * dt
        pause = manners.testpoint([counter])
        pauses.append(pause)
        if pause:
            clock.advance(pause)
    return pauses, counter


class TestFacade:
    def test_steady_rate_never_pauses(self, clock, fast_config):
        manners = Manners(fast_config, clock=clock)
        pauses, _ = drive_manners(manners, clock, rate=100.0, steps=150)
        assert sum(pauses) <= 2.0  # at most an occasional type-I blip

    def test_degradation_pauses(self, clock, fast_config):
        manners = Manners(fast_config, clock=clock)
        _, counter = drive_manners(manners, clock, rate=100.0, steps=100)
        pauses, _ = drive_manners(
            manners, clock, rate=20.0, steps=40, counter_start=counter
        )
        assert sum(pauses) > 0.0

    def test_detailed_decision_exposed(self, clock, fast_config):
        manners = Manners(fast_config, clock=clock)
        counter = 0.0
        seen_judgment = False
        for _ in range(200):
            clock.advance(0.1)
            counter += 10.0
            decision = manners.testpoint_detailed([counter])
            if decision.judgment is Judgment.GOOD:
                seen_judgment = True
        assert seen_judgment

    def test_app_id_requires_store(self, clock):
        with pytest.raises(ValueError):
            Manners(app_id="app")

    def test_defaults_to_monotonic_clock(self):
        manners = Manners()
        assert manners.testpoint([0.0]) == 0.0  # priming call


class TestPersistenceFlow:
    def test_targets_saved_on_close(self, clock, fast_config, tmp_path):
        store = TargetStore(tmp_path)
        with Manners(fast_config, clock=clock, app_id="app", store=store) as manners:
            drive_manners(manners, clock, rate=100.0, steps=50)
        assert store.load("app") is not None

    def test_restart_skips_bootstrap(self, fast_config, tmp_path):
        store = TargetStore(tmp_path)
        clock_a = ManualClock()
        first = Manners(fast_config, clock=clock_a, app_id="app", store=store)
        drive_manners(first, clock_a, rate=100.0, steps=100)
        first.close()

        clock_b = ManualClock()
        second = Manners(fast_config, clock=clock_b, app_id="app", store=store)
        assert not second.regulator.in_bootstrap

    def test_periodic_save(self, fast_config, tmp_path):
        store = TargetStore(tmp_path)
        clock = ManualClock()
        manners = Manners(
            fast_config, clock=clock, app_id="app", store=store, save_interval=5.0
        )
        drive_manners(manners, clock, rate=100.0, steps=100)  # 10+ seconds
        assert store.load("app") is not None  # saved without close()
