"""Exact binomial tails, cross-checked against scipy."""

from __future__ import annotations


import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats as sps

from repro.core.binomial import binomial_cdf, binomial_pmf, binomial_sf, log_binomial_pmf


class TestPmf:
    def test_fair_coin_singles(self):
        assert binomial_pmf(1, 0) == pytest.approx(0.5)
        assert binomial_pmf(1, 1) == pytest.approx(0.5)

    def test_impossible_outcomes_are_zero(self):
        assert binomial_pmf(5, -1) == 0.0
        assert binomial_pmf(5, 6) == 0.0

    def test_degenerate_p_zero(self):
        assert binomial_pmf(4, 0, p=0.0) == 1.0
        assert binomial_pmf(4, 1, p=0.0) == 0.0

    def test_degenerate_p_one(self):
        assert binomial_pmf(4, 4, p=1.0) == 1.0
        assert binomial_pmf(4, 3, p=1.0) == 0.0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            log_binomial_pmf(-1, 0)

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            log_binomial_pmf(3, 1, p=1.5)

    @given(st.integers(0, 200), st.integers(0, 200))
    def test_matches_scipy_pmf(self, n, r):
        expected = sps.binom.pmf(r, n, 0.5)
        assert binomial_pmf(n, r) == pytest.approx(expected, abs=1e-12)


class TestTails:
    @given(st.integers(0, 120), st.integers(-2, 122))
    def test_sf_matches_scipy(self, n, r):
        # scipy's sf is P(R > r); ours is inclusive P(R >= r).
        expected = sps.binom.sf(r - 1, n, 0.5)
        assert binomial_sf(n, r) == pytest.approx(expected, abs=1e-10)

    @given(st.integers(0, 120), st.integers(-2, 122))
    def test_cdf_matches_scipy(self, n, r):
        expected = sps.binom.cdf(r, n, 0.5)
        assert binomial_cdf(n, r) == pytest.approx(expected, abs=1e-10)

    @given(st.integers(0, 80), st.integers(0, 80))
    def test_sf_cdf_complementary(self, n, r):
        if r > n:
            return
        total = binomial_cdf(n, r - 1) + binomial_sf(n, r)
        assert total == pytest.approx(1.0, abs=1e-9)

    @given(st.integers(1, 100))
    def test_sf_monotone_in_r(self, n):
        values = [binomial_sf(n, r) for r in range(n + 2)]
        assert values == sorted(values, reverse=True)

    def test_extremes(self):
        assert binomial_sf(10, 0) == 1.0
        assert binomial_sf(10, 11) == 0.0
        assert binomial_cdf(10, 10) == 1.0
        assert binomial_cdf(10, -1) == 0.0

    def test_all_below_probability_is_power_of_two(self):
        # P(R >= n) = 2^-n for a fair coin: the basis of Eq. (1).
        for n in range(1, 20):
            assert binomial_sf(n, n) == pytest.approx(2.0**-n)
