"""Clock-anomaly guards in the regulator (§4.1 sanity checks).

Backward clock steps, zero-elapsed testpoints, and implausible rate spikes
must each be discarded — without perturbing the calibrated target or the
sign-test window — and regulation must continue normally on the very next
testpoint (one discard, never a run of them).
"""

from __future__ import annotations

from repro.core.comparator import StatisticalComparator
from repro.core.controller import ThreadRegulator
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry


def calibrate(reg, clock, steps=100, rate=100.0, dt=0.1, counter=0.0):
    """Drive ``steps`` on-protocol testpoints at a steady rate."""
    for _ in range(steps):
        clock.advance(dt)
        counter += rate * dt
        decision = reg.on_testpoint(clock.now(), 0, [counter])
        if decision.delay > 0:
            clock.advance(decision.delay)
    return counter


class TestBackwardStep:
    def test_backward_step_discarded(self, clock, fast_config):
        comparator = StatisticalComparator()
        reg = ThreadRegulator(fast_config, comparator=comparator)
        counter = calibrate(reg, clock, steps=100)
        cal = reg.calibrator(0)
        samples_before = cal.sample_count
        target_before = cal.target_duration((10.0,))
        window_before = comparator.sample_count

        decision = reg.on_testpoint(clock.now() - 50.0, 0, [counter + 1.0])
        assert decision.processed
        assert decision.anomaly == "clock_backward"
        assert decision.delay == 0.0
        assert decision.judgment is None
        assert reg.stats.clock_anomalies == 1
        # The anomalous sample perturbed nothing.
        assert cal.sample_count == samples_before
        assert cal.target_duration((10.0,)) == target_before
        assert comparator.sample_count == window_before

    def test_one_discard_not_a_run(self, clock, fast_config):
        """The regulator rebases on the regressed reading and continues."""
        reg = ThreadRegulator(fast_config)
        counter = calibrate(reg, clock, steps=100)
        regressed = clock.now() - 50.0
        reg.on_testpoint(regressed, 0, [counter])
        # Testpoints continue at a normal cadence in the shifted timeline.
        for i in range(1, 11):
            counter += 10.0
            decision = reg.on_testpoint(regressed + 0.1 * i, 0, [counter])
            assert decision.processed
            assert decision.anomaly is None
        assert reg.stats.clock_anomalies == 1

    def test_tiny_regression_within_slack_tolerated(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        counter = calibrate(reg, clock, steps=20)
        decision = reg.on_testpoint(clock.now() - 1e-9, 0, [counter + 1.0])
        assert decision.anomaly is None
        assert reg.stats.clock_anomalies == 0

    def test_emits_anomaly_and_recovery_events(self, clock, fast_config):
        memory = MemorySink()
        reg = ThreadRegulator(fast_config, telemetry=Telemetry(sink=memory))
        counter = calibrate(reg, clock, steps=30)
        reg.on_testpoint(clock.now() - 10.0, 0, [counter + 1.0])
        anomalies = [e for e in memory.events if e.kind == "anomaly"]
        recoveries = [e for e in memory.events if e.kind == "recovery"]
        assert anomalies and anomalies[-1].anomaly == "clock_backward"
        assert recoveries and recoveries[-1].action == "sample_discarded"


class TestZeroElapsed:
    def test_zero_elapsed_discarded(self, clock, fast_config):
        comparator = StatisticalComparator()
        reg = ThreadRegulator(fast_config, comparator=comparator)
        counter = calibrate(reg, clock, steps=100)
        cal = reg.calibrator(0)
        samples_before = cal.sample_count
        window_before = comparator.sample_count

        # Frozen clock: same reading, counters advanced.
        decision = reg.on_testpoint(clock.now(), 0, [counter + 10.0])
        assert decision.processed
        assert decision.anomaly == "zero_elapsed"
        assert reg.stats.zero_elapsed_discards == 1
        assert cal.sample_count == samples_before
        assert comparator.sample_count == window_before

    def test_regulation_continues_after_frozen_clock(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        counter = calibrate(reg, clock, steps=100)
        reg.on_testpoint(clock.now(), 0, [counter + 10.0])
        clock.advance(0.1)
        decision = reg.on_testpoint(clock.now(), 0, [counter + 20.0])
        assert decision.anomaly is None
        assert decision.processed


class TestRateSpike:
    def test_implausible_spike_discarded(self, clock, fast_config):
        comparator = StatisticalComparator()
        reg = ThreadRegulator(fast_config, comparator=comparator)
        counter = calibrate(reg, clock, steps=100)
        cal = reg.calibrator(0)
        samples_before = cal.sample_count
        target_before = cal.target_duration((10.0,))
        window_before = comparator.sample_count

        # Work that calibrated at ~0.1 s reported in 10 µs: >1000x spike.
        clock.advance(1e-5)
        decision = reg.on_testpoint(clock.now(), 0, [counter + 10.0])
        assert decision.processed
        assert decision.anomaly == "rate_spike"
        assert reg.stats.rate_spike_discards == 1
        assert cal.sample_count == samples_before
        assert cal.target_duration((10.0,)) == target_before
        assert comparator.sample_count == window_before

    def test_merely_fast_progress_not_discarded(self, clock, fast_config):
        """2x faster than target is plausible and must be judged, not dropped."""
        reg = ThreadRegulator(fast_config)
        counter = calibrate(reg, clock, steps=100)
        clock.advance(0.05)
        decision = reg.on_testpoint(clock.now(), 0, [counter + 10.0])
        assert decision.anomaly is None
        assert decision.calibrated

    def test_spikes_not_checked_during_bootstrap(self, clock, fast_config):
        """During bootstrap there is no trusted target to compare against."""
        reg = ThreadRegulator(fast_config)
        reg.on_testpoint(clock.now(), 0, [0.0])
        clock.advance(1e-6)
        decision = reg.on_testpoint(clock.now(), 0, [1000.0])
        assert decision.anomaly is None
        assert reg.stats.rate_spike_discards == 0


class TestForcedDiscard:
    def test_discard_next_interval(self, clock, fast_config):
        comparator = StatisticalComparator()
        reg = ThreadRegulator(fast_config, comparator=comparator)
        counter = calibrate(reg, clock, steps=100)
        cal = reg.calibrator(0)
        samples_before = cal.sample_count
        window_before = comparator.sample_count

        reg.discard_next_interval("watchdog_stall")
        clock.advance(5.0)  # the stall: long but below hung_threshold
        decision = reg.on_testpoint(clock.now(), 0, [counter + 1.0])
        assert decision.processed
        assert decision.anomaly == "watchdog_stall"
        assert reg.stats.forced_discards == 1
        assert cal.sample_count == samples_before
        assert comparator.sample_count == window_before

    def test_forced_discard_consumed_once(self, clock, fast_config):
        reg = ThreadRegulator(fast_config)
        counter = calibrate(reg, clock, steps=100)
        reg.discard_next_interval()
        clock.advance(1.0)
        first = reg.on_testpoint(clock.now(), 0, [counter + 1.0])
        assert first.anomaly == "external_stall"
        clock.advance(0.1)
        second = reg.on_testpoint(clock.now(), 0, [counter + 11.0])
        assert second.anomaly is None
        assert reg.stats.forced_discards == 1
