"""Machine-wide process token (section 7.1)."""

from __future__ import annotations

import pytest

from repro.core.errors import RegulationStateError
from repro.core.superintendent import Superintendent


class TestToken:
    def test_acquire_grants_when_free(self):
        boss = Superintendent()
        boss.register_process("A")
        assert boss.acquire("A", 0.0)
        assert boss.holder == "A"

    def test_second_process_denied_while_held(self):
        boss = Superintendent()
        boss.register_process("A")
        boss.register_process("B")
        assert boss.acquire("A", 0.0)
        assert not boss.acquire("B", 0.0)

    def test_release_enables_other(self):
        boss = Superintendent()
        boss.register_process("A")
        boss.register_process("B")
        boss.acquire("A", 0.0)
        boss.release("A", 1.0)
        assert boss.acquire("B", 1.0)

    def test_release_without_hint_leaves_contention(self):
        """A released process never passively wins a token it didn't ask
        for: another process's request at a later time must succeed even
        though the releaser has an earlier admission order."""
        boss = Superintendent()
        boss.register_process("A")
        boss.register_process("B")
        boss.acquire("A", 0.0)
        boss.release("A", 0.0)
        assert boss.acquire("B", 10.0)

    def test_release_with_until_hint(self):
        """The hint re-enters the process into passive contention at the
        given time (its supervisor knows when its threads wake)."""
        boss = Superintendent()
        boss.register_process("A")
        boss.register_process("B")
        boss.acquire("A", 0.0)
        boss.release("A", 0.0, until=50.0)
        # Before the hint, B's request wins even though A is first by order.
        assert boss.acquire("B", 10.0)
        boss.release("B", 10.0)
        # An explicit request from A is always a fresh ask and can win.
        assert boss.acquire("A", 20.0)

    def test_next_eligible_time(self):
        boss = Superintendent()
        boss.register_process("A")
        boss.acquire("A", 0.0)
        boss.register_process("B")
        boss.release("B", 0.0, until=30.0)
        assert boss.next_eligible_time(0.0) == 30.0

    def test_next_eligible_time_ignores_uninterested(self):
        boss = Superintendent()
        boss.register_process("A")
        boss.register_process("B")
        boss.acquire("A", 0.0)
        boss.release("B", 0.0)  # no hint: out of contention
        assert boss.next_eligible_time(0.0) is None

    def test_unregister_frees_token(self):
        boss = Superintendent()
        boss.register_process("A")
        boss.acquire("A", 0.0)
        boss.unregister_process("A")
        assert boss.holder is None

    def test_decay_usage_shares_across_processes(self):
        boss = Superintendent()
        boss.register_process("A")
        boss.register_process("B")
        counts = {"A": 0, "B": 0}
        now = 0.0
        for _ in range(200):
            # Both supervisors ask every round (busy processes).
            for pid in ("A", "B"):
                boss.acquire(pid, now)
            holder = boss.holder
            counts[holder] += 1
            boss.charge(holder, 1.0)
            # Stay in passive contention, as a busy supervisor does.
            boss.release(holder, now, until=now)
            now += 1.0
        assert abs(counts["A"] - counts["B"]) <= 20

    def test_priority_process_wins(self):
        boss = Superintendent()
        boss.register_process("A", priority=0)
        boss.register_process("B", priority=2)
        # Both ask at the same instant; B should win the free token.
        boss.release("A", 0.0)
        boss.release("B", 0.0)
        assert not boss.acquire("A", 1.0) or boss.holder == "A"
        boss2 = Superintendent()
        boss2.register_process("A", priority=0)
        boss2.register_process("B", priority=2)
        # Simulate simultaneous eligibility, then arbitrate.
        assert boss2.acquire("B", 0.0)

    def test_unknown_process_rejected(self):
        boss = Superintendent()
        with pytest.raises(RegulationStateError):
            boss.acquire("ghost", 0.0)

    def test_contains(self):
        boss = Superintendent()
        boss.register_process("A")
        assert "A" in boss
        assert "B" not in boss
