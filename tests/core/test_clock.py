"""Clock abstraction."""

from __future__ import annotations

import math

import pytest

from repro.core.clock import Clock, ManualClock, MonotonicClock
from repro.core.errors import ClockError


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(5.0).now() == 5.0

    def test_advance(self, clock):
        clock.advance(2.5)
        clock.advance(0.5)
        assert clock.now() == 3.0

    def test_advance_rejects_negative(self, clock):
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_set_rejects_backwards(self, clock):
        clock.set(10.0)
        with pytest.raises(ClockError):
            clock.set(9.0)

    def test_set_same_time_allowed(self, clock):
        clock.set(3.0)
        assert clock.set(3.0) == 3.0

    def test_rejects_non_finite(self):
        with pytest.raises(ClockError):
            ManualClock(math.nan)
        with pytest.raises(ClockError):
            ManualClock().advance(math.inf)

    def test_satisfies_protocol(self, clock):
        assert isinstance(clock, Clock)


class TestMonotonicClock:
    def test_non_decreasing(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_satisfies_protocol(self):
        assert isinstance(MonotonicClock(), Clock)
