"""Clock abstraction."""

from __future__ import annotations

import math

import pytest

from repro.core.clock import Clock, GuardedClock, ManualClock, MonotonicClock
from repro.core.errors import ClockError


class _ScriptedSource:
    """A clock replaying a fixed (possibly anomalous) reading sequence."""

    def __init__(self, *readings):
        self._readings = list(readings)

    def now(self):
        return self._readings.pop(0)


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(5.0).now() == 5.0

    def test_advance(self, clock):
        clock.advance(2.5)
        clock.advance(0.5)
        assert clock.now() == 3.0

    def test_advance_rejects_negative(self, clock):
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_set_rejects_backwards(self, clock):
        clock.set(10.0)
        with pytest.raises(ClockError):
            clock.set(9.0)

    def test_set_same_time_allowed(self, clock):
        clock.set(3.0)
        assert clock.set(3.0) == 3.0

    def test_rejects_non_finite(self):
        with pytest.raises(ClockError):
            ManualClock(math.nan)
        with pytest.raises(ClockError):
            ManualClock().advance(math.inf)

    def test_satisfies_protocol(self, clock):
        assert isinstance(clock, Clock)


class TestMonotonicClock:
    def test_non_decreasing(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_satisfies_protocol(self):
        assert isinstance(MonotonicClock(), Clock)


class TestGuardedClock:
    def test_sane_readings_pass_through(self):
        guarded = GuardedClock(_ScriptedSource(1.0, 2.0, 3.5))
        assert [guarded.now() for _ in range(3)] == [1.0, 2.0, 3.5]
        assert guarded.backward_steps == 0
        assert guarded.forward_jumps == 0

    def test_backward_reading_clamped_to_furthest(self):
        guarded = GuardedClock(_ScriptedSource(5.0, 3.0, 6.0))
        assert guarded.now() == 5.0
        # The regressed reading is clamped: time never runs backwards.
        assert guarded.now() == 5.0
        assert guarded.backward_steps == 1
        # A subsequent sane reading resumes normally (one glitch, one clamp).
        assert guarded.now() == 6.0
        assert guarded.backward_steps == 1

    def test_non_finite_readings_degrade_to_zero_until_primed(self):
        guarded = GuardedClock(_ScriptedSource(math.nan, math.inf, 2.0))
        assert guarded.now() == 0.0
        assert guarded.now() == 0.0
        assert guarded.backward_steps == 2
        assert guarded.now() == 2.0

    def test_non_finite_after_priming_holds_last_reading(self):
        guarded = GuardedClock(_ScriptedSource(7.0, math.nan, 8.0))
        assert guarded.now() == 7.0
        assert guarded.now() == 7.0
        assert guarded.now() == 8.0

    def test_forward_jump_passes_through_but_is_counted(self):
        guarded = GuardedClock(_ScriptedSource(0.0, 100.0, 101.0), max_jump=10.0)
        assert guarded.now() == 0.0
        # Time really advanced, so the reading is reported as-is...
        assert guarded.now() == 100.0
        # ...but counted, so the substrate can discard the spanning interval.
        assert guarded.forward_jumps == 1
        assert guarded.now() == 101.0
        assert guarded.forward_jumps == 1

    def test_satisfies_protocol(self):
        assert isinstance(GuardedClock(ManualClock()), Clock)

    def test_wraps_manual_clock(self, clock):
        guarded = GuardedClock(clock)
        assert guarded.now() == 0.0
        clock.advance(1.5)
        assert guarded.now() == 1.5
