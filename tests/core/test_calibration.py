"""Target calibrators and the median correction."""

from __future__ import annotations

import random

import pytest

from repro.core.calibration import (
    MedianScale,
    SingleMetricCalibrator,
    make_calibrator,
)
from repro.core.config import MannersConfig
from repro.core.errors import MetricError
from repro.core.regression import RidgeCalibrator


class TestMedianScale:
    def test_starts_neutral(self):
        assert MedianScale().scale == 1.0

    def test_moves_up_when_samples_run_long(self):
        ms = MedianScale()
        for _ in range(50):
            ms.observe(duration=1.2, predicted=1.0)
        assert ms.scale > 1.1

    def test_moves_down_when_samples_run_short(self):
        ms = MedianScale()
        for _ in range(50):
            ms.observe(duration=0.8, predicted=1.0)
        assert ms.scale < 0.9

    def test_bounded(self):
        ms = MedianScale(bounds=(0.5, 1.5))
        for _ in range(1000):
            ms.observe(2.0, 1.0)
        assert ms.scale <= 1.5
        for _ in range(1000):
            ms.observe(0.1, 1.0)
        assert ms.scale >= 0.5

    def test_converges_to_target_quantile(self):
        """The factor settles where ~1/3 of samples are below target."""
        rng = random.Random(9)
        ms = MedianScale(eta=0.01, bounds=(0.25, 4.0))
        # Warm in on a uniform ratio distribution over [0.5, 1.5].
        ratios = []
        below = 0
        for i in range(20_000):
            r = rng.uniform(0.5, 1.5)
            if i >= 10_000:
                ratios.append(r)
                if r > ms.scale:
                    below += 1
            ms.observe(r, 1.0)
        fraction_below = below / len(ratios)
        assert fraction_below == pytest.approx(1.0 / 3.0, abs=0.08)

    def test_ignores_degenerate_samples(self):
        ms = MedianScale()
        ms.observe(0.0, 1.0)
        ms.observe(1.0, 0.0)
        assert ms.scale == 1.0

    def test_state_round_trip(self):
        ms = MedianScale()
        for _ in range(20):
            ms.observe(1.5, 1.0)
        other = MedianScale()
        other.import_state(ms.export_state())
        assert other.scale == ms.scale

    def test_import_clamps(self):
        ms = MedianScale(bounds=(0.5, 1.5))
        ms.import_state(9.0)
        assert ms.scale == 1.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MedianScale(eta=0.0)
        with pytest.raises(ValueError):
            MedianScale(bounds=(1.2, 1.5))


class TestSingleMetricCalibrator:
    def test_learns_constant_rate(self):
        cal = SingleMetricCalibrator(window=50)
        for _ in range(100):
            cal.update(0.1, [25.0])  # 250 units/s
        assert cal.target_rate == pytest.approx(250.0)
        assert cal.target_duration([50.0]) == pytest.approx(0.2, rel=0.1)

    def test_zero_duration_is_ignored(self):
        cal = SingleMetricCalibrator(window=50)
        cal.update(0.0, [5.0])
        assert cal.sample_count == 0

    def test_rejects_wrong_arity(self):
        cal = SingleMetricCalibrator(window=50)
        with pytest.raises(MetricError):
            cal.update(1.0, [1.0, 2.0])
        with pytest.raises(MetricError):
            cal.target_duration([1.0, 2.0])

    def test_rejects_negative_progress(self):
        cal = SingleMetricCalibrator(window=50)
        with pytest.raises(MetricError):
            cal.update(1.0, [-1.0])

    def test_uncalibrated_target_duration_is_zero(self):
        assert SingleMetricCalibrator(window=10).target_duration([5.0]) == 0.0

    def test_state_round_trip(self):
        cal = SingleMetricCalibrator(window=50)
        for _ in range(60):
            cal.update(0.1, [10.0])
        clone = SingleMetricCalibrator(window=50)
        clone.import_state(cal.export_state())
        assert clone.target_rate == pytest.approx(cal.target_rate)

    def test_import_empty_state_is_noop(self):
        cal = SingleMetricCalibrator(window=50)
        cal.import_state({})
        assert cal.target_rate is None

    def test_import_rejects_bad_rate(self):
        cal = SingleMetricCalibrator(window=50)
        with pytest.raises(MetricError):
            cal.import_state({"rate": float("nan")})


class TestFactory:
    def test_single_metric_uses_averaging(self):
        cfg = MannersConfig()
        assert isinstance(make_calibrator(1, cfg), SingleMetricCalibrator)

    def test_multi_metric_uses_regression(self):
        cfg = MannersConfig()
        cal = make_calibrator(3, cfg)
        assert isinstance(cal, RidgeCalibrator)
        assert cal.arity == 3

    def test_zero_arity_rejected(self):
        with pytest.raises(MetricError):
            make_calibrator(0, MannersConfig())
