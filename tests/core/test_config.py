"""MannersConfig validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.errors import ConfigError


class TestDefaults:
    def test_paper_values(self):
        assert DEFAULT_CONFIG.alpha == 0.05
        assert DEFAULT_CONFIG.beta == 0.2
        assert DEFAULT_CONFIG.averaging_n == 10_000
        assert DEFAULT_CONFIG.ridge_nu == 0.1

    def test_theta_is_eq5(self):
        assert DEFAULT_CONFIG.theta == pytest.approx(9999 / 10000)

    def test_min_poor_samples_is_eq1(self):
        assert DEFAULT_CONFIG.min_poor_samples == 5

    def test_smoothing_time_constant_eq6(self):
        # n = 10,000 at a 150 ms cadence: 25 minutes, the paper's "20-30
        # minutes".
        ts = DEFAULT_CONFIG.smoothing_time_constant(0.15)
        assert 20 * 60 <= ts <= 30 * 60

    def test_tracking_time_constant_eq7(self):
        # n/m * max suspension = 10,000/5 * 256 s ~ 5.9 days, the paper's
        # "7 days" order of magnitude.
        t = DEFAULT_CONFIG.tracking_time_constant()
        assert 4 * 86_400 <= t <= 9 * 86_400


class TestValidation:
    def test_alpha_must_be_less_than_beta(self):
        with pytest.raises(ConfigError, match="unstable"):
            MannersConfig(alpha=0.3, beta=0.2)

    def test_alpha_domain(self):
        with pytest.raises(ConfigError):
            MannersConfig(alpha=0.0)
        with pytest.raises(ConfigError):
            MannersConfig(alpha=1.5)

    def test_suspension_ordering(self):
        with pytest.raises(ConfigError):
            MannersConfig(initial_suspension=10.0, max_suspension=5.0)

    def test_positive_initial_suspension(self):
        with pytest.raises(ConfigError):
            MannersConfig(initial_suspension=0.0)

    def test_hung_threshold_exceeds_gate(self):
        with pytest.raises(ConfigError):
            MannersConfig(min_testpoint_interval=5.0, hung_threshold=4.0)

    def test_probation_duty_domain(self):
        with pytest.raises(ConfigError):
            MannersConfig(probation_duty=0.0)
        MannersConfig(probation_duty=1.0)  # boundary is legal

    def test_averaging_window_minimum(self):
        with pytest.raises(ConfigError):
            MannersConfig(averaging_n=1)

    def test_smoothing_constant_rejects_bad_interval(self):
        with pytest.raises(ConfigError):
            DEFAULT_CONFIG.smoothing_time_constant(0.0)


class TestOverrides:
    def test_with_overrides_creates_validated_copy(self):
        derived = DEFAULT_CONFIG.with_overrides(alpha=0.01)
        assert derived.alpha == 0.01
        assert DEFAULT_CONFIG.alpha == 0.05  # original untouched

    def test_with_overrides_revalidates(self):
        with pytest.raises(ConfigError):
            DEFAULT_CONFIG.with_overrides(beta=0.01)  # now beta < alpha

    def test_as_dict_round_trip(self):
        d = DEFAULT_CONFIG.as_dict()
        rebuilt = MannersConfig(**d)
        assert rebuilt == DEFAULT_CONFIG

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.alpha = 0.2  # type: ignore[misc]
