"""The declarative experiment platform (repro.experiments.spec).

Determinism contract tests: cell enumeration is a pure function of the
spec, per-cell seeds are independent of enumeration order under
``seeds="derived"``, serial and parallel runs produce bit-identical
report digests, and the trial cache round-trips a spec run (a warm second
run executes zero trials).  Plus spec-resolution precedence, registry
validation, the baseline-delta helper, and the report artifact format.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.parallel import TrialCache
from repro.apps.base import RegulationMode
from repro.experiments.scenarios import mode_sweep
from repro.experiments.spec import (
    EXPERIMENTS,
    SCENARIOS,
    ExperimentSpec,
    baseline_deltas,
    cell_seed_base,
    enumerate_cells,
    get_experiment,
    load_experiment_report,
    register,
    register_scenario,
    run_experiment,
    run_experiments,
    samples_by_cell,
    spec_cell_trial,
    write_experiment_report,
)

#: A fast spec for runner tests: defrag_idle at a tiny scale runs a trial
#: in ~10 ms.
TINY = ExperimentSpec(
    name="tiny_idle",
    scenario="defrag_idle",
    variables={"mode": ("unregulated", "MS Manners")},
    metrics=("li_time", "events_fired"),
    seed_base=3000,
    trials=2,
    scale=0.01,
)


class TestSpecDefinition:
    def test_cell_enumeration_declaration_order(self):
        spec = ExperimentSpec(
            name="grid",
            scenario="defrag_idle",
            variables={"mode": ("a", "b"), "scale_class": (1, 2, 3)},
            metrics=("li_time",),
        )
        cells = enumerate_cells(spec)
        assert cells == [
            {"mode": "a", "scale_class": 1},
            {"mode": "a", "scale_class": 2},
            {"mode": "a", "scale_class": 3},
            {"mode": "b", "scale_class": 1},
            {"mode": "b", "scale_class": 2},
            {"mode": "b", "scale_class": 3},
        ]
        assert spec.cell_count == 6
        # Pure function of the spec: enumerating again gives the same list.
        assert enumerate_cells(spec) == cells

    def test_paired_seeds_identical_across_cells(self):
        spec = ExperimentSpec(
            name="paired",
            scenario="defrag_idle",
            variables={"mode": ("a", "b")},
            metrics=("li_time",),
            seed_base=777,
        )
        assert [cell_seed_base(spec, c) for c in enumerate_cells(spec)] == [777, 777]

    def test_derived_seeds_independent_of_enumeration_order(self):
        forward = ExperimentSpec(
            name="fwd",
            scenario="defrag_idle",
            variables={"mode": ("a", "b"), "x": (1, 2)},
            metrics=("li_time",),
            seeds="derived",
        )
        # Same cells, declared in reversed variable order and with the
        # levels reversed: every cell must still derive the same seed base.
        backward = ExperimentSpec(
            name="bwd",
            scenario="defrag_idle",
            variables={"x": (2, 1), "mode": ("b", "a")},
            metrics=("li_time",),
            seeds="derived",
        )
        fwd = {
            frozenset(c.items()): cell_seed_base(forward, c)
            for c in enumerate_cells(forward)
        }
        bwd = {
            frozenset(c.items()): cell_seed_base(backward, c)
            for c in enumerate_cells(backward)
        }
        assert fwd == bwd
        # ... and distinct cells get distinct seed bases.
        assert len(set(fwd.values())) == len(fwd)

    def test_derived_seed_depends_on_seed_base_and_scenario(self):
        base = dict(
            variables={"mode": ("a",)}, metrics=("li_time",), seeds="derived"
        )
        a = ExperimentSpec(name="a", scenario="defrag_idle", seed_base=1, **base)
        b = ExperimentSpec(name="b", scenario="defrag_idle", seed_base=2, **base)
        c = ExperimentSpec(name="c", scenario="defrag_database", seed_base=1, **base)
        cell = {"mode": "a"}
        assert cell_seed_base(a, cell) != cell_seed_base(b, cell)
        assert cell_seed_base(a, cell) != cell_seed_base(c, cell)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x", scenario="defrag_idle", variables={},
                metrics=("li_time",),
            )
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x", scenario="defrag_idle", variables={"mode": ()},
                metrics=("li_time",),
            )
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x", scenario="defrag_idle", variables={"mode": ("a",)},
                metrics=("li_time",), seeds="random",
            )
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x", scenario="defrag_idle", variables={"mode": ("a",)},
                metrics=("li_time",), scale=0.0,
            )
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x", scenario="defrag_idle", variables={"mode": ("a",)},
                metrics=("li_time",), trials_factor=0.0,
            )

    def test_resolve_trials_precedence(self, monkeypatch):
        spec = ExperimentSpec(
            name="t", scenario="defrag_idle", variables={"mode": ("a",)},
            metrics=("li_time",), default_trials=5,
        )
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        assert spec.resolve_trials() == 5
        monkeypatch.setenv("REPRO_TRIALS", "9")
        assert spec.resolve_trials() == 9
        assert spec.resolve_trials(3) == 3  # explicit beats env
        pinned = ExperimentSpec(
            name="p", scenario="defrag_idle", variables={"mode": ("a",)},
            metrics=("li_time",), trials=1,
        )
        assert pinned.resolve_trials() == 1  # pin beats env

    def test_resolve_trials_factor_matches_legacy_arithmetic(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        spec = ExperimentSpec(
            name="half", scenario="defrag_database",
            variables={"mode": ("not running",)}, metrics=("hi_time",),
            trials_factor=0.5, min_trials=2,
        )
        # The Figure 6 control arm ran max(2, trials // 2).
        for n in (3, 5, 7, 50):
            assert spec.resolve_trials(n) == max(2, n // 2)

    def test_resolve_scale_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        unpinned = ExperimentSpec(
            name="u", scenario="defrag_idle", variables={"mode": ("a",)},
            metrics=("li_time",),
        )
        assert unpinned.resolve_scale() == 0.25
        assert TINY.resolve_scale() == 0.01  # pin beats env
        assert TINY.resolve_scale(0.5) == 0.5  # explicit beats pin
        with pytest.raises(ValueError):
            TINY.resolve_scale(-1.0)


class TestRegistry:
    def test_builtin_specs_registered(self):
        for name in (
            "fig3_database", "fig4_setup", "fig5_idle", "fig6_contended",
            "fig6_defrag_alone", "fig6_database_alone",
            "ablation_backoff", "ablation_comparator", "smoke",
        ):
            assert name in EXPERIMENTS
            assert EXPERIMENTS[name].scenario in SCENARIOS

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            get_experiment("nope")
        assert "nope" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register(EXPERIMENTS["smoke"])

    def test_register_requires_known_scenario(self):
        spec = ExperimentSpec(
            name="ghost", scenario="ghost_scenario",
            variables={"mode": ("a",)}, metrics=("li_time",),
        )
        with pytest.raises(ValueError):
            register(spec)

    def test_duplicate_scenario_rejected(self):
        with pytest.raises(ValueError):
            register_scenario("defrag_idle", lambda seed, scale=1.0: {})

    def test_spec_cell_trial_unknown_scenario(self):
        with pytest.raises(ValueError):
            spec_cell_trial("ghost", (), 1.0, 1)


class TestRunExperiment:
    def test_matches_legacy_mode_sweep_bit_identically(self):
        report = run_experiment(TINY)
        legacy = mode_sweep(
            "defrag_idle",
            (RegulationMode.UNREGULATED, RegulationMode.MS_MANNERS),
            "li_time",
            trials=2,
            seed_base=3000,
            scale=0.01,
        )
        assert samples_by_cell(report, "li_time") == legacy

    def test_fig4_port_matches_legacy_mode_sweep_bit_identically(self):
        """The fig4_setup port: same scenario/seeds/samples as the sweep.

        Runs the ported shape (groveler_setup, seed_base=2000) at a tiny
        scale and a two-mode subset against the legacy ``mode_sweep``
        path it replaced; samples must be bit-identical.
        """
        spec = ExperimentSpec(
            name="fig4_tiny",
            scenario="groveler_setup",
            variables={"mode": ("not running", "MS Manners")},
            metrics=("hi_time",),
            seed_base=2000,
            trials=2,
            scale=0.01,
        )
        report = run_experiment(spec)
        legacy = mode_sweep(
            "groveler_setup",
            (RegulationMode.NOT_RUNNING, RegulationMode.MS_MANNERS),
            "hi_time",
            trials=2,
            seed_base=2000,
            scale=0.01,
        )
        assert samples_by_cell(report, "hi_time") == legacy

    def test_serial_parallel_digest_parity(self):
        serial = run_experiment(TINY, jobs=1)
        parallel = run_experiment(TINY, jobs=4)
        assert serial["results_digest"] == parallel["results_digest"]
        assert serial["cells"] == parallel["cells"]
        assert parallel["jobs"] == 4

    def test_cache_round_trip_executes_zero_trials(self, tmp_path):
        cache = TrialCache(tmp_path)
        first = run_experiment(TINY, cache=cache)
        assert first["trials_executed"] == 4
        assert first["trials_cached"] == 0
        second = run_experiment(TINY, cache=cache)
        assert second["trials_executed"] == 0
        assert second["trials_cached"] == 4
        assert second["results_digest"] == first["results_digest"]
        assert second["cells"] == first["cells"]

    def test_report_shape(self):
        report = run_experiment(TINY)
        assert report["kind"] == "experiment"
        assert report["cell_count"] == 2
        assert report["trials_total"] == 4
        assert len(report["results_digest"]) == 16
        assert report["events_total"] > 0
        for cell in report["cells"]:
            stats = cell["stats"]["li_time"]
            assert stats["n"] == 2
            assert stats["min"] <= stats["median"] <= stats["max"]
        # Cells in enumeration order.
        assert [c["params"]["mode"] for c in report["cells"]] == [
            "unregulated", "MS Manners",
        ]

    def test_run_experiments_shares_runner(self):
        reports = run_experiments([TINY, TINY], jobs=1)
        assert len(reports) == 2
        assert reports[0]["results_digest"] == reports[1]["results_digest"]

    def test_trials_and_scale_overrides(self):
        report = run_experiment(TINY, trials=1, scale=0.02)
        assert report["trials"] == 1
        assert report["scale"] == 0.02


class TestBaselineAndArtifact:
    def test_no_baseline_returns_none(self):
        report = run_experiment(TINY)
        assert baseline_deltas(report) is None

    def test_missing_baseline_reported_not_raised(self, tmp_path):
        report = run_experiment(TINY)
        report["baseline"] = "defrag_idle"
        gate = baseline_deltas(report, baseline_dir=tmp_path)
        assert gate["missing"] is True
        assert gate["failures"] == []

    def test_deltas_against_committed_style_baseline(self, tmp_path):
        report = run_experiment(TINY)
        report["baseline"] = "defrag_idle"
        baseline = {
            "name": "defrag_idle",
            "events_per_sec": report["events_per_sec"] * 2,
            "wall_time_s": report["wall_time_s"],
            "trials": report["trials"],
        }
        path = tmp_path / "BENCH_defrag_idle.json"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        gate = baseline_deltas(report, baseline_dir=tmp_path)
        assert gate["missing"] is False
        assert gate["deltas"]["events_per_sec"] == pytest.approx(-0.5, abs=0.01)
        assert gate["deltas"]["events_per_sec_regressed"] is True
        assert gate["failures"], "a 2x throughput drop must fail the gate"

    def test_artifact_round_trip(self, tmp_path):
        report = run_experiment(TINY)
        path = write_experiment_report(report, tmp_path)
        assert path.name == "EXP_tiny_idle.json"
        loaded = load_experiment_report(path)
        assert loaded == json.loads(json.dumps(report))  # JSON-safe
        combined = {"kind": "experiment-report", "experiments": [report]}
        path2 = write_experiment_report(combined, tmp_path)
        assert path2.name == "EXP_report.json"

    def test_samples_by_cell_multivariable_label(self):
        report = {
            "variables": {"a": [1], "b": [2]},
            "cells": [
                {"params": {"a": 1, "b": 2}, "label": "a=1,b=2",
                 "samples": {"m": [0.5]}},
            ],
        }
        assert samples_by_cell(report, "m") == {"a=1,b=2": [0.5]}
