"""End-to-end regulation scenarios (scaled-down paper experiments)."""

from __future__ import annotations

import pytest

from repro.apps.base import RegulationMode
from repro.experiments.scenarios import (
    defrag_database_trial,
    defrag_idle_trial,
    groveler_setup_trial,
)

#: Scale factor for the fixed workloads; keeps each trial under a second of
#: wall time while preserving overlap between the LI and HI applications.
SCALE = 0.35


@pytest.fixture(scope="module")
def fig3_results():
    """One trial per mode of the defragmenter/database experiment."""
    modes = (
        RegulationMode.NOT_RUNNING,
        RegulationMode.UNREGULATED,
        RegulationMode.CPU_PRIORITY,
        RegulationMode.MS_MANNERS,
        RegulationMode.BENICE,
    )
    return {mode: defrag_database_trial(mode, seed=42, scale=SCALE) for mode in modes}


class TestFigure3Shape:
    def test_unregulated_contention_degrades_database(self, fig3_results):
        base = fig3_results[RegulationMode.NOT_RUNNING].hi_time
        contended = fig3_results[RegulationMode.UNREGULATED].hi_time
        assert contended > 1.4 * base  # paper: ~1.9x

    def test_cpu_priority_is_no_help_for_disk_contention(self, fig3_results):
        unregulated = fig3_results[RegulationMode.UNREGULATED].hi_time
        cpu_prio = fig3_results[RegulationMode.CPU_PRIORITY].hi_time
        assert cpu_prio == pytest.approx(unregulated, rel=0.1)

    def test_manners_restores_near_baseline(self, fig3_results):
        base = fig3_results[RegulationMode.NOT_RUNNING].hi_time
        manners = fig3_results[RegulationMode.MS_MANNERS].hi_time
        assert manners < 1.25 * base  # paper: 1.07x

    def test_manners_cuts_degradation_by_factors(self, fig3_results):
        base = fig3_results[RegulationMode.NOT_RUNNING].hi_time
        unregulated = fig3_results[RegulationMode.UNREGULATED].hi_time
        manners = fig3_results[RegulationMode.MS_MANNERS].hi_time
        degradation_unreg = unregulated - base
        degradation_manners = manners - base
        # The headline claim: an order of magnitude, allow 3x margin at
        # this scale.
        assert degradation_manners < degradation_unreg / 3.0

    def test_benice_comparable_to_library(self, fig3_results):
        base = fig3_results[RegulationMode.NOT_RUNNING].hi_time
        benice = fig3_results[RegulationMode.BENICE].hi_time
        assert benice < 1.3 * base

    def test_regulated_defragmenter_still_finishes(self, fig3_results):
        assert fig3_results[RegulationMode.MS_MANNERS].li_time is not None

    def test_regulation_costs_the_li_process(self, fig3_results):
        """Figure 6: the LI process pays for deferring (overshoot)."""
        unregulated = fig3_results[RegulationMode.UNREGULATED].li_time
        manners = fig3_results[RegulationMode.MS_MANNERS].li_time
        assert manners >= 0.8 * unregulated


class TestFigure5Shape:
    def test_manners_negligible_on_idle_system(self):
        unreg = defrag_idle_trial(RegulationMode.UNREGULATED, seed=7, scale=SCALE)
        manners = defrag_idle_trial(RegulationMode.MS_MANNERS, seed=7, scale=SCALE)
        assert manners.li_time == pytest.approx(unreg.li_time, rel=0.10)

    def test_benice_overhead_small(self):
        unreg = defrag_idle_trial(RegulationMode.UNREGULATED, seed=7, scale=SCALE)
        benice = defrag_idle_trial(RegulationMode.BENICE, seed=7, scale=SCALE)
        overhead = benice.li_time / unreg.li_time - 1.0
        assert overhead < 0.12  # paper: ~1.5%


class TestFigure4Shape:
    def test_groveler_experiment_shape(self):
        base = groveler_setup_trial(RegulationMode.NOT_RUNNING, seed=9, scale=SCALE)
        unreg = groveler_setup_trial(RegulationMode.UNREGULATED, seed=9, scale=SCALE)
        manners = groveler_setup_trial(RegulationMode.MS_MANNERS, seed=9, scale=SCALE)
        assert unreg.hi_time > 1.15 * base.hi_time
        assert manners.hi_time < 1.2 * base.hi_time
        assert manners.li_time is not None  # groveler eventually finishes
