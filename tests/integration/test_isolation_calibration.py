"""Thread isolation (Figure 9) and automatic calibration (Figure 10)."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import calibration_trial, thread_isolation_trial
from repro.simos.workload import busy_fraction


class TestThreadIsolation:
    @pytest.fixture(scope="class")
    def result(self):
        return thread_isolation_trial(seed=11, duration=300.0)

    def test_threads_alternate_not_overlap(self, result):
        # Time-multiplex isolation: overlap of the two grovel threads'
        # executing time is tiny.
        assert result.mutual_overlap < 0.05

    def test_priority_thread_runs_more(self, result):
        duty = result.duty
        c = duty.duty_fraction(result.threads["grovelC"], 0.0, result.duration)
        d = duty.duty_fraction(result.threads["grovelD"], 0.0, result.duration)
        # C (the fuller disk) has the higher priority.
        assert c > d

    def test_load_on_c_shifts_execution_to_d(self, result):
        duty = result.duty
        (c_busy,) = [
            b for b in result.schedules["diskC"]
            if not any(b2.start == b.start for b2 in result.schedules["diskD"])
        ]
        c_frac = duty.duty_fraction(result.threads["grovelC"], c_busy.start + 20, c_busy.end)
        d_frac = duty.duty_fraction(result.threads["grovelD"], c_busy.start + 20, c_busy.end)
        assert d_frac > c_frac

    def test_cpu_load_suspends_both(self, result):
        duty = result.duty
        (cpu_busy,) = result.schedules["cpu"]
        lo, hi = cpu_busy.start + 20, cpu_busy.end
        c_frac = duty.duty_fraction(result.threads["grovelC"], lo, hi)
        d_frac = duty.duty_fraction(result.threads["grovelD"], lo, hi)
        free = duty.duty_fraction(
            result.threads["grovelC"], 0.0, result.schedules["diskC"][0].start
        )
        assert c_frac + d_frac < free  # markedly less active under CPU load

    def test_without_isolation_threads_overlap(self):
        ablation = thread_isolation_trial(seed=11, duration=120.0, isolation=False)
        isolated = thread_isolation_trial(seed=11, duration=120.0, isolation=True)
        assert ablation.mutual_overlap > isolated.mutual_overlap


class TestCalibration:
    @pytest.fixture(scope="class")
    def result(self):
        # A compressed version of the 48-hour experiment: 4 "hours" of
        # 10-minute diurnal cycles, 1 hour of probation.
        return calibration_trial(
            seed=13, hours=4.0, probation_hours=1.0, diurnal_hours=1.0, scale=0.3
        )

    def test_worst_case_start_inflates_initial_target(self, result):
        """Starting inside a burst, the first target is markedly too slow.

        (The paper's full 48-hour run shows a 3.3x inflation; this
        compressed run demonstrates the same shape at smaller magnitude.)
        """
        assert result.initial_target is not None
        assert result.final_target is not None
        assert result.initial_target > 1.25 * result.final_target

    def test_target_converges_downward(self, result):
        hours = [h for h, _ in result.target_trajectory]
        values = [v for _, v in result.target_trajectory]
        assert len(values) >= 3
        # Last observed target below the first (convergence toward ideal).
        assert values[-1] < values[0]

    def test_execution_mostly_in_idle_periods(self, result):
        """Paper: 94% of execution while the dummy was idle."""
        assert result.execution_in_idle > 0.7

    def test_probation_constrains_activity(self, result):
        probation = [f for h, f in result.activity if h < 1]
        assert probation
        # Probation duty cap (0.25) plus regulation keeps activity low.
        assert max(probation) <= 0.4

    def test_schedule_itself_is_half_busy(self, result):
        assert 0.3 <= result.schedule_busy_fraction <= 0.7
