"""Cross-process file-token superintendent."""

from __future__ import annotations

import os
import time

import pytest

from repro.realtime.filetoken import FileTokenSuperintendent


class TestTokenProtocol:
    def test_acquire_creates_file(self, tmp_path):
        token = tmp_path / "manners.token"
        boss = FileTokenSuperintendent(token)
        boss.register_process("A")
        assert boss.acquire("A", 0.0)
        assert token.exists()

    def test_second_superintendent_denied(self, tmp_path):
        token = tmp_path / "manners.token"
        boss_a = FileTokenSuperintendent(token)
        boss_b = FileTokenSuperintendent(token)
        boss_a.register_process("A")
        boss_b.register_process("B")
        assert boss_a.acquire("A", 0.0)
        assert not boss_b.acquire("B", 0.0)

    def test_release_lets_other_acquire(self, tmp_path):
        token = tmp_path / "manners.token"
        boss_a = FileTokenSuperintendent(token)
        boss_b = FileTokenSuperintendent(token)
        boss_a.register_process("A")
        boss_b.register_process("B")
        boss_a.acquire("A", 0.0)
        boss_a.release("A", 1.0)
        assert not token.exists()
        assert boss_b.acquire("B", 1.0)

    def test_reacquire_is_heartbeat(self, tmp_path):
        token = tmp_path / "manners.token"
        boss = FileTokenSuperintendent(token)
        boss.register_process("A")
        boss.acquire("A", 0.0)
        before = token.stat().st_mtime
        time.sleep(0.02)
        assert boss.acquire("A", 1.0)
        assert token.stat().st_mtime >= before

    def test_stale_token_broken(self, tmp_path):
        token = tmp_path / "manners.token"
        token.write_text("12345:'dead'\n")
        old = time.time() - 120.0
        os.utime(token, (old, old))
        boss = FileTokenSuperintendent(token, stale_after=60.0)
        boss.register_process("A")
        assert boss.acquire("A", 0.0)

    def test_fresh_foreign_token_respected(self, tmp_path):
        token = tmp_path / "manners.token"
        token.write_text("12345:'other'\n")
        boss = FileTokenSuperintendent(token, stale_after=60.0)
        boss.register_process("A")
        assert not boss.acquire("A", 0.0)

    def test_release_idempotent(self, tmp_path):
        boss = FileTokenSuperintendent(tmp_path / "t")
        boss.register_process("A")
        boss.release("A", 0.0)
        boss.acquire("A", 0.0)
        boss.release("A", 0.0)
        boss.release("A", 0.0)

    def test_unregister_drops_token(self, tmp_path):
        token = tmp_path / "t"
        boss = FileTokenSuperintendent(token)
        boss.register_process("A")
        boss.acquire("A", 0.0)
        boss.unregister_process("A")
        assert not token.exists()

    def test_next_eligible_time_polls(self, tmp_path):
        boss = FileTokenSuperintendent(tmp_path / "t", retry_interval=0.5)
        boss.register_process("A")
        assert boss.next_eligible_time(10.0) == 10.5
        boss.acquire("A", 10.0)
        assert boss.next_eligible_time(10.0) is None

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FileTokenSuperintendent(tmp_path / "t", stale_after=0.0)
        with pytest.raises(ValueError):
            FileTokenSuperintendent(tmp_path / "t", retry_interval=0.0)


class TestWithRealTimeRegulator:
    def test_two_regulators_share_machine_token(self, tmp_path):
        """Two RealTimeRegulators (standing in for two OS processes) defer
        to each other through the file token."""
        import threading

        from repro.core.config import MannersConfig
        from repro.realtime.adapter import RealTimeRegulator

        token = tmp_path / "manners.token"
        config = MannersConfig(
            bootstrap_testpoints=5, probation_period=0.0, averaging_n=50,
            min_testpoint_interval=0.002, initial_suspension=0.05,
            max_suspension=0.2, hung_threshold=5.0,
        )
        done = {"a": 0, "b": 0}
        overlap = {"count": 0, "max": 0}
        active_lock = threading.Lock()
        active = set()
        stop = time.monotonic() + 1.5

        def worker(name):
            boss = FileTokenSuperintendent(token, retry_interval=0.01)
            regulator = RealTimeRegulator(
                config, superintendent=boss, process_id=name
            )
            count = 0.0
            while time.monotonic() < stop:
                with active_lock:
                    active.add(name)
                    overlap["max"] = max(overlap["max"], len(active))
                time.sleep(0.002)  # the "work"
                with active_lock:
                    active.discard(name)
                count += 1.0
                regulator.testpoint([count])
                done[name] += 1
            regulator.release()

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert done["a"] + done["b"] > 50
        # Both made progress: the token rotates.
        assert done["a"] > 5 and done["b"] > 5
