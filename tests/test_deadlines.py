"""DeadlineQueue: wall-clock deadlines on either simulation event core."""

import shutil
import tempfile
from pathlib import Path

import pytest

from repro.daemon.soak import run_soak
from repro.realtime.deadlines import DeadlineQueue
from repro.simos.engine import Engine
from repro.simos.wheel import WheelEngine


class FakeClock:
    """Injectable monotonic clock for deterministic deadline tests."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestDeadlineQueue:
    def test_fires_in_deadline_then_insertion_order(self):
        clock = FakeClock()
        q = DeadlineQueue("heap", clock=clock)
        fired = []
        q.schedule(2.0, fired.append, "late")
        q.schedule(1.0, fired.append, "early")
        q.schedule(1.0, fired.append, "early-second")
        assert q.poll() == 0
        clock.advance(1.5)
        assert q.poll() == 2
        assert fired == ["early", "early-second"]
        clock.advance(1.0)
        q.poll()
        assert fired == ["early", "early-second", "late"]
        assert q.pending == 0

    def test_cancel_suppresses_firing(self):
        clock = FakeClock()
        q = DeadlineQueue("wheel", clock=clock)
        fired = []
        handle = q.schedule(1.0, fired.append, "cancelled")
        q.schedule(1.0, fired.append, "kept")
        handle.cancel()
        clock.advance(2.0)
        q.poll()
        assert fired == ["kept"]

    def test_negative_delay_clamps_to_next_poll(self):
        clock = FakeClock()
        q = DeadlineQueue("heap", clock=clock)
        fired = []
        q.schedule(-5.0, fired.append, "overdue")
        assert q.next_wait() == 0.0
        assert q.poll() == 1
        assert fired == ["overdue"]

    def test_next_wait_sizes_the_sleep(self):
        clock = FakeClock()
        q = DeadlineQueue("wheel", clock=clock)
        assert q.next_wait() is None
        q.schedule(3.0, lambda: None)
        assert q.next_wait() == pytest.approx(3.0)
        clock.advance(1.0)
        assert q.next_wait() == pytest.approx(2.0)
        clock.advance(5.0)
        assert q.next_wait() == 0.0

    def test_periodic_reschedule_fires_once_per_interval(self):
        clock = FakeClock()
        q = DeadlineQueue("heap", clock=clock)
        ticks = []

        def tick():
            ticks.append(clock())
            q.schedule(1.0, tick)

        q.schedule(1.0, tick)
        for _ in range(4):
            clock.advance(1.0)
            q.poll()
        assert len(ticks) == 4

    @pytest.mark.parametrize("core,cls", [("heap", Engine), ("wheel", WheelEngine)])
    def test_explicit_core_selection(self, core, cls):
        assert type(DeadlineQueue(core).engine) is cls

    @pytest.mark.parametrize("core,cls", [("heap", Engine), ("wheel", WheelEngine)])
    def test_env_core_selection(self, core, cls, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", core)
        assert type(DeadlineQueue().engine) is cls

    @pytest.mark.parametrize("core", ["heap", "wheel"])
    def test_cores_fire_identically(self, core):
        clock = FakeClock()
        q = DeadlineQueue(core, clock=clock)
        fired = []
        for i, delay in enumerate([0.5, 2.5, 1.5, 0.5, 60.0]):
            q.schedule(delay, fired.append, i)
        clock.advance(100.0)
        q.poll()
        assert fired == [0, 3, 2, 1, 4]


class TestDaemonSoakOnEitherCore:
    """The deployable daemon path runs on whichever core is selected."""

    @pytest.mark.parametrize("core", ["heap", "wheel"])
    def test_soak_runs_on_core(self, core, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", core)
        workdir = Path(tempfile.mkdtemp(prefix="reprocore-"))
        try:
            report = run_soak(
                ["ipc-chaos"], seeds=[1], duration=3.0, workdir=workdir
            )
            assert len(report.runs) == 1
            assert report.runs[0].ok, report.runs[0].unmatched or report.runs[0].note
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
