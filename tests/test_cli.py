"""The command-line interface."""

from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_defaults(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out
        assert "min samples to condemn" in out
        assert "5" in out

    def test_module_entrypoint(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "MS Manners" in result.stdout

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFigures:
    def test_writes_all_tsvs(self, tmp_path, capsys):
        code = main(
            ["figures", "--out", str(tmp_path), "--scale", "0.15", "--hours", "2"]
        )
        assert code == 0
        for name in (
            "fig7_duty.tsv",
            "fig8_progress.tsv",
            "fig9_isolation.tsv",
            "fig10_calibration.tsv",
        ):
            path = tmp_path / name
            assert path.exists(), name
            lines = path.read_text().splitlines()
            assert len(lines) >= 2  # header + data
            assert "\t" in lines[0]


class TestObsSummarize:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        from repro.obs import JsonlSink, MetricsRegistry, Telemetry

        from .obs.test_telemetry_regulator import run_episode

        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            run_episode(Telemetry(sink=sink, metrics=MetricsRegistry()))
        return path

    def test_summarize_prints_regulation_timeline(self, trace_path, capsys):
        assert main(["obs", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "regulation timeline:" in out
        assert "SUSPEND" in out
        assert "RESET backoff" in out

    def test_missing_trace_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error: no such trace file" in captured.err

    def test_corrupt_trace_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["obs", "summarize", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_trace_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "summarize", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "trace is empty" in captured.err

    def test_truncated_trace_is_an_error(self, trace_path, capsys):
        clipped = trace_path.with_name("clipped.jsonl")
        clipped.write_bytes(trace_path.read_bytes()[:-20])
        assert main(["obs", "summarize", str(clipped)]) == 2
        assert "appears truncated" in capsys.readouterr().err

    def test_percentile_section_in_summary(self, trace_path, capsys):
        assert main(["obs", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "percentiles (bucket resolution):" in out
        assert "p99<=" in out


class TestObsExplainAndExport:
    @pytest.fixture(scope="class")
    def traced_scenario(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("explain") / "trace.jsonl"
        code = main(
            [
                "--quiet", "faults", "run",
                "--scenario", "crash-mid-suspension",
                "--seed", "3",
                "--trace-out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_explain_reconstructs_a_suspension(self, traced_scenario, capsys):
        assert main(["obs", "explain", str(traced_scenario), "w1"]) == 0
        out = capsys.readouterr().out
        assert "why was 'w1' suspended" in out
        assert "judgment #" in out
        assert "threshold row n=" in out
        assert "from testpoint #" in out

    def test_explain_is_deterministic(self, traced_scenario, capsys):
        assert main(["obs", "explain", str(traced_scenario), "w1", "--at", "30"]) == 0
        first = capsys.readouterr().out
        assert main(["obs", "explain", str(traced_scenario), "w1", "--at", "30"]) == 0
        assert capsys.readouterr().out == first

    def test_explain_unknown_thread_fails_with_hint(self, traced_scenario, capsys):
        assert main(["obs", "explain", str(traced_scenario), "ghost"]) == 1
        assert "threads with suspensions" in capsys.readouterr().err

    def test_explain_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["obs", "explain", str(tmp_path / "nope.jsonl"), "w1"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_export_prom_writes_histograms(self, traced_scenario, capsys):
        assert main(["obs", "export", str(traced_scenario), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_progress_rate histogram" in out
        assert 'le="+Inf"' in out

    def test_export_jsonl_round_trips(self, traced_scenario, tmp_path, capsys):
        from repro.obs.report import read_events

        out_path = tmp_path / "normalized.jsonl"
        code = main(
            [
                "obs", "export", str(traced_scenario),
                "--format", "jsonl", "--out", str(out_path),
            ]
        )
        assert code == 0
        assert read_events(out_path) == read_events(traced_scenario)


class TestFaultsFlightRecorder:
    def test_faults_run_dumps_recent_spans_on_fault(self, tmp_path, capsys):
        from repro.obs import events as obs_events
        from repro.obs.report import read_events
        from repro.obs.trace2 import spans_of

        dumps = tmp_path / "dumps"
        code = main(
            [
                "faults", "run",
                "--scenario", "crash-mid-suspension",
                "--seed", "3",
                "--flightrec", str(dumps),
                "--flightrec-capacity", "64",
            ]
        )
        assert code == 0
        assert "flight-recorder dump ->" in capsys.readouterr().out
        paths = sorted(dumps.iterdir())
        assert paths
        fault_dump = [p for p in paths if "fault-crash" in p.name]
        assert fault_dump
        events = read_events(fault_dump[0])
        header, body = events[0], events[1:]
        assert isinstance(header, obs_events.FlightRecorderDump)
        assert header.captured == len(body) == 64  # the N most recent events
        assert body[-1].kind == "fault"  # ... ending at the trigger, in order
        assert [e.t for e in body] == sorted(e.t for e in body)
        assert spans_of(body)


class TestQuiet:
    def test_quiet_suppresses_progress_not_results(self, tmp_path, capsys):
        code = main(
            [
                "--quiet", "figures",
                "--out", str(tmp_path),
                "--scale", "0.15",
                "--hours", "2",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""  # all figures output is progress
        assert (tmp_path / "fig7_duty.tsv").exists()

    def test_quiet_keeps_info_results(self, capsys):
        assert main(["--quiet", "info"]) == 0
        assert "alpha" in capsys.readouterr().out


class TestTraceOut:
    def test_figures_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "figures",
                "--out", str(tmp_path),
                "--scale", "0.15",
                "--hours", "2",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        assert trace.exists() and trace.stat().st_size > 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["testpoints"] > 0
        out = capsys.readouterr().out
        assert "event trace ->" in out
        assert "metrics snapshot ->" in out


class TestBench:
    def test_list_names_benchmarks(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "defrag_idle" in out
        assert "defrag_database" in out

    def test_missing_name_lists_and_errors(self, capsys):
        assert main(["bench"]) == 2
        captured = capsys.readouterr()
        assert "defrag_idle" in captured.out
        assert "name a benchmark" in captured.err

    def test_unknown_name_rejected(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_writes_report_with_parity(self, tmp_path, capsys):
        code = main(
            [
                "bench", "defrag_idle",
                "--jobs", "2",
                "--trials", "3",
                "--scale", "0.01",
                "--no-cache",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        report = json.loads((tmp_path / "BENCH_defrag_idle.json").read_text())
        assert report["name"] == "defrag_idle"
        assert report["jobs"] == 2
        assert report["trials"] == 3
        assert report["parity_ok"] is True
        assert report["trials_per_sec"] > 0
        assert report["events_total"] > 0
        assert len(report["results_digest"]) == 16
        out = capsys.readouterr().out
        assert "parity" in out

    def test_serial_run_skips_parity_pass(self, tmp_path):
        code = main(
            [
                "bench", "defrag_idle",
                "--jobs", "1",
                "--trials", "2",
                "--scale", "0.01",
                "--no-cache",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        report = json.loads((tmp_path / "BENCH_defrag_idle.json").read_text())
        assert report["speedup_vs_serial"] is None
        assert report["parity_ok"] is None


@pytest.mark.slow
class TestBeNiceCommand:
    def test_regulates_real_process(self, tmp_path):
        counter = tmp_path / "progress.json"
        worker_code = (
            "import json, os, sys, time\n"
            "done = 0\n"
            "while True:\n"
            "    time.sleep(0.005)\n"
            "    done += 1\n"
            "    tmp = sys.argv[1] + '.tmp'\n"
            "    open(tmp, 'w').write(json.dumps({'items': done}))\n"
            "    os.replace(tmp, sys.argv[1])\n"
        )
        worker = subprocess.Popen([sys.executable, "-c", worker_code, str(counter)])
        try:
            deadline = time.monotonic() + 10.0
            while not counter.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "benice",
                    "--pid", str(worker.pid),
                    "--counters", str(counter),
                    "--names", "items",
                    "--duration", "3",
                    "--min-testpoint-interval", "0.01",
                ],
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            assert "polls" in result.stdout
            assert worker.poll() is None  # target left running
        finally:
            worker.kill()
            worker.wait()


class TestFingerprintGate:
    """`faults run` fails when a run drifts from its recorded fingerprint."""

    @pytest.fixture
    def fp_file(self, tmp_path, monkeypatch):
        from repro.faults import scenarios

        path = tmp_path / "fingerprints.json"
        monkeypatch.setattr(scenarios, "FINGERPRINT_FILE", path)
        return path

    ARGS = ["--quiet", "faults", "run", "--scenario", "crash-mid-suspension", "--seed", "3"]

    def test_record_then_verify_round_trips(self, fp_file):
        assert main(self.ARGS + ["--record-fingerprints"]) == 0
        recorded = json.loads(fp_file.read_text())
        assert "crash-mid-suspension:3" in recorded
        assert main(self.ARGS) == 0  # reproduces bit-for-bit

    def test_unrecorded_run_still_passes(self, fp_file):
        assert main(self.ARGS) == 0

    def test_drift_from_recorded_fingerprint_fails(self, fp_file, capsys):
        fp_file.write_text(json.dumps({"crash-mid-suspension:3": "deadbeefdeadbeef"}))
        assert main(self.ARGS) == 1
        assert "fingerprint mismatch" in capsys.readouterr().err

    def test_json_output_carries_the_verdict(self, fp_file, capsys):
        fp_file.write_text(json.dumps({"crash-mid-suspension:3": "deadbeefdeadbeef"}))
        assert main(self.ARGS + ["--json"]) == 1
        body = json.loads(capsys.readouterr().out)
        assert body["fingerprint_ok"] is False
        assert body["recorded_fingerprint"] == "deadbeefdeadbeef"


class TestDaemonCli:
    def test_serve_drains_on_duration(self, capsys):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory(prefix="reprod-") as rundir:
            sock = str(Path(rundir) / "d.sock")
            code = main(
                ["daemon", "serve", "--socket", sock, "--duration", "0.5", "--fast"]
            )
            assert code == 0
            assert "daemon drained" in capsys.readouterr().out

    def test_status_against_dead_socket_fails(self, tmp_path, capsys):
        code = main(["daemon", "status", "--socket", str(tmp_path / "nope.sock")])
        assert code == 1
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_soak_unknown_scenario_is_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "--quiet", "daemon", "soak",
                "--scenarios", "gremlins",
                "--seeds", "1",
                "--duration", "1",
                "--workdir", str(tmp_path),
            ]
        )
        assert code == 2
        assert "unknown soak scenario" in capsys.readouterr().err

    def test_bad_worker_spec_is_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "daemon", "serve",
                "--socket", str(tmp_path / "d.sock"),
                "--workers", "nocolon",
            ]
        )
        assert code == 2
        assert "not KIND:NAME" in capsys.readouterr().err


class TestExp:
    def test_list_names_specs(self, capsys):
        assert main(["exp", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig3_database" in out
        assert "fig5_idle" in out
        assert "ablation_backoff" in out
        assert "smoke" in out
        assert "baseline=defrag_idle" in out

    def test_unknown_name_rejected(self, capsys):
        assert main(["exp", "run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_artifact_with_deltas(self, tmp_path, capsys):
        code = main(
            [
                "exp", "run", "smoke",
                "--trials", "2",
                "--scale", "0.01",
                "--jobs", "2",
                "--no-cache",
                "--out", str(tmp_path),
                "--baseline-dir", str(tmp_path),  # no baselines here
            ]
        )
        assert code == 0
        report = json.loads((tmp_path / "EXP_smoke.json").read_text())
        assert report["kind"] == "experiment"
        assert report["name"] == "smoke"
        assert report["jobs"] == 2
        assert report["trials"] == 2
        assert report["cell_count"] == 2
        assert len(report["results_digest"]) == 16
        assert report["baseline_gate"]["missing"] is True
        out = capsys.readouterr().out
        assert "digest" in out
        assert "missing" in out

    def test_run_multiple_specs_combined_artifact(self, tmp_path):
        code = main(
            [
                "exp", "run", "ablation_backoff", "ablation_comparator",
                "--no-cache",
                "--out", str(tmp_path),
                "--baseline-dir", str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "EXP_report.json").read_text())
        assert payload["kind"] == "experiment-report"
        assert [r["name"] for r in payload["experiments"]] == [
            "ablation_backoff", "ablation_comparator",
        ]

    def test_report_renders_saved_artifact(self, tmp_path, capsys):
        assert main(
            [
                "--quiet", "exp", "run", "smoke",
                "--trials", "1", "--scale", "0.01", "--no-cache",
                "--out", str(tmp_path), "--baseline-dir", str(tmp_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["exp", "report", str(tmp_path / "EXP_smoke.json")]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        assert "li_time median" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["exp", "report", str(tmp_path / "nope.json")]) == 2
        assert "no such report" in capsys.readouterr().err

    def test_invalid_jobs_is_usage_error(self, tmp_path, capsys):
        code = main(
            ["exp", "run", "smoke", "--jobs", "0", "--out", str(tmp_path)]
        )
        assert code == 2
        assert "jobs" in capsys.readouterr().err
