"""The command-line interface."""

from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_defaults(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out
        assert "min samples to condemn" in out
        assert "5" in out

    def test_module_entrypoint(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "MS Manners" in result.stdout

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFigures:
    def test_writes_all_tsvs(self, tmp_path, capsys):
        code = main(
            ["figures", "--out", str(tmp_path), "--scale", "0.15", "--hours", "2"]
        )
        assert code == 0
        for name in (
            "fig7_duty.tsv",
            "fig8_progress.tsv",
            "fig9_isolation.tsv",
            "fig10_calibration.tsv",
        ):
            path = tmp_path / name
            assert path.exists(), name
            lines = path.read_text().splitlines()
            assert len(lines) >= 2  # header + data
            assert "\t" in lines[0]


@pytest.mark.slow
class TestBeNiceCommand:
    def test_regulates_real_process(self, tmp_path):
        counter = tmp_path / "progress.json"
        worker_code = (
            "import json, os, sys, time\n"
            "done = 0\n"
            "while True:\n"
            "    time.sleep(0.005)\n"
            "    done += 1\n"
            "    tmp = sys.argv[1] + '.tmp'\n"
            "    open(tmp, 'w').write(json.dumps({'items': done}))\n"
            "    os.replace(tmp, sys.argv[1])\n"
        )
        worker = subprocess.Popen([sys.executable, "-c", worker_code, str(counter)])
        try:
            deadline = time.monotonic() + 10.0
            while not counter.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "benice",
                    "--pid", str(worker.pid),
                    "--counters", str(counter),
                    "--names", "items",
                    "--duration", "3",
                    "--min-testpoint-interval", "0.01",
                ],
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            assert "polls" in result.stdout
            assert worker.poll() is None  # target left running
        finally:
            worker.kill()
            worker.wait()
