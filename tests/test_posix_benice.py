"""PosixBeNice: regulating a real OS process with SIGSTOP/SIGCONT."""

from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from repro.core.config import MannersConfig
from repro.realtime.posix_benice import JsonFileCounters, PosixBeNice

#: A real child process that does "work" and publishes a cumulative counter
#: to a JSON file.  It slows down 10x when the slowdown marker file exists,
#: standing in for resource contention.
_WORKER = r"""
import json, os, sys, time
counter_path, marker_path = sys.argv[1], sys.argv[2]
done = 0
while True:
    time.sleep(0.05 if os.path.exists(marker_path) else 0.005)
    done += 1
    tmp = counter_path + ".tmp"
    with open(tmp, "w") as f:
        json.dump({"items": done}, f)
    os.replace(tmp, counter_path)
"""

FAST_CONFIG = MannersConfig(
    bootstrap_testpoints=8,
    probation_period=0.0,
    averaging_n=60,
    min_testpoint_interval=0.01,
    initial_suspension=0.2,
    max_suspension=1.0,
    hung_threshold=10.0,
)


@pytest.fixture
def worker(tmp_path):
    counter = tmp_path / "progress.json"
    marker = tmp_path / "slow.marker"
    process = subprocess.Popen(
        [sys.executable, "-c", _WORKER, str(counter), str(marker)]
    )
    # Wait for the first counter write.
    deadline = time.monotonic() + 10.0
    while not counter.exists() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert counter.exists(), "worker never started producing"
    yield process, counter, marker
    process.kill()
    process.wait()


class TestJsonFileCounters:
    def test_reads_values(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"a": 5, "b": 7}))
        reader = JsonFileCounters(path, ["a", "b"])
        assert reader() == (5.0, 7.0)

    def test_missing_file_returns_zeros_then_last(self, tmp_path):
        path = tmp_path / "c.json"
        reader = JsonFileCounters(path, ["a"])
        assert reader() == (0.0,)
        path.write_text(json.dumps({"a": 3}))
        assert reader() == (3.0,)
        path.unlink()
        assert reader() == (3.0,)  # last known values survive a bad read

    def test_torn_regression_guarded(self, tmp_path):
        path = tmp_path / "c.json"
        reader = JsonFileCounters(path, ["a"])
        path.write_text(json.dumps({"a": 10}))
        assert reader() == (10.0,)
        path.write_text(json.dumps({"a": 4}))  # torn write
        assert reader() == (10.0,)

    def test_requires_names(self, tmp_path):
        with pytest.raises(ValueError):
            JsonFileCounters(tmp_path / "c.json", [])


@pytest.mark.slow
class TestEndToEnd:
    def test_healthy_worker_not_suspended(self, worker):
        process, counter, marker = worker
        poller_config = FAST_CONFIG
        benice = PosixBeNice(
            process.pid,
            JsonFileCounters(counter, ["items"]),
            config=poller_config,
        )
        with benice:
            time.sleep(3.0)
        assert benice.stats.polls > 3
        # An unimpeded worker accrues at most a rare false suspension.
        assert benice.stats.total_suspension_time <= 0.6

    def test_slowdown_triggers_sigstop_backoff(self, worker):
        process, counter, marker = worker
        benice = PosixBeNice(
            process.pid,
            JsonFileCounters(counter, ["items"]),
            config=FAST_CONFIG,
        )
        with benice:
            time.sleep(2.5)  # calibrate at full speed
            before = benice.stats.suspensions
            marker.write_text("contention")  # 10x slowdown begins
            time.sleep(4.0)
            during = benice.stats.suspensions
            marker.unlink()  # contention ends
            time.sleep(2.0)
        assert during > before, "the slowdown must be recognized and punished"
        assert benice.stats.total_suspension_time > 0.0
        # The target must be left running.
        assert process.poll() is None

    def test_stop_always_resumes_target(self, worker):
        process, counter, marker = worker
        benice = PosixBeNice(
            process.pid, JsonFileCounters(counter, ["items"]), config=FAST_CONFIG
        )
        benice.start()
        time.sleep(1.0)
        benice.stop()
        # After stop, the worker keeps making progress.
        v1 = json.loads(counter.read_text())["items"]
        time.sleep(0.5)
        v2 = json.loads(counter.read_text())["items"]
        assert v2 > v1

    def test_validation(self):
        with pytest.raises(ValueError):
            PosixBeNice(0, lambda: (0.0,))

    def test_double_start_rejected(self, worker):
        process, counter, marker = worker
        benice = PosixBeNice(
            process.pid, JsonFileCounters(counter, ["items"]), config=FAST_CONFIG
        )
        benice.start()
        try:
            with pytest.raises(Exception):
                benice.start()
        finally:
            benice.stop()
