"""High-importance applications: database server and installer."""

from __future__ import annotations


import pytest

from repro.apps.database import DatabaseServer, LoadWorkload
from repro.apps.installer import Installer, InstallWorkload
from repro.simos.disk import CDROM_PARAMS
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel


class TestDatabaseServer:
    def _build(self, seed=1, batches=80):
        kernel = Kernel(seed=seed)
        kernel.add_disk("C")
        volume = Volume("C", "C", total_blocks=200_000)
        db = DatabaseServer(
            kernel, volume, workload=LoadWorkload(batches=batches), seed=seed
        )
        return kernel, db

    def test_load_completes_and_measures(self):
        kernel, db = self._build()
        db.spawn_load(start_after=0.0)
        kernel.run()
        result = db.results[0]
        assert result.elapsed is not None and result.elapsed > 0
        assert result.totals["batches"] == 80

    def test_start_delay_respected(self):
        kernel, db = self._build()
        db.spawn_load(start_after=30.0)
        kernel.run()
        assert db.results[0].started_at == pytest.approx(30.0)

    def test_load_time_scales_with_batches(self):
        kernel_small, db_small = self._build(batches=40)
        db_small.spawn_load(0.0)
        kernel_small.run()
        kernel_big, db_big = self._build(batches=160)
        db_big.spawn_load(0.0)
        kernel_big.run()
        assert db_big.results[0].elapsed > 2.5 * db_small.results[0].elapsed

    def test_writes_hit_the_disk(self):
        kernel, db = self._build()
        db.spawn_load(0.0)
        kernel.run()
        disk = kernel.disks["C"]
        assert disk.stats.bytes_written >= 80 * 65536


class TestInstaller:
    def _build(self, seed=1, files=25):
        kernel = Kernel(seed=seed)
        kernel.add_disk("C")
        kernel.add_disk("CD", params=CDROM_PARAMS)
        volume = Volume("C", "C", total_blocks=300_000)
        installer = Installer(
            kernel, cd_disk="CD", target=volume,
            workload=InstallWorkload(files=files), seed=seed,
        )
        return kernel, volume, installer

    def test_installation_completes(self):
        kernel, volume, installer = self._build()
        installer.spawn()
        kernel.run()
        assert installer.result.elapsed is not None
        assert installer.result.totals["files"] == 25
        assert volume.file_count == 25

    def test_cd_and_disk_both_used(self):
        kernel, volume, installer = self._build()
        installer.spawn()
        kernel.run()
        assert kernel.disks["CD"].stats.bytes_read > 0
        assert kernel.disks["C"].stats.bytes_written > 0
        # Expansion: more bytes written than read from CD.
        assert (
            kernel.disks["C"].stats.bytes_written
            > kernel.disks["CD"].stats.bytes_read
        )

    def test_cd_reads_dominate_time_profile(self):
        """The CD is the slowest device; it should be busy most of the run."""
        kernel, volume, installer = self._build(files=15)
        installer.spawn()
        kernel.run()
        elapsed = installer.result.elapsed
        cd_busy = kernel.disks["CD"].stats.busy_time
        assert cd_busy / elapsed > 0.4

    def test_start_delay(self):
        kernel, volume, installer = self._build()
        installer.spawn(start_after=12.0)
        kernel.run()
        assert installer.result.started_at == pytest.approx(12.0)
