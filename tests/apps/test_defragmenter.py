"""The disk defragmenter application."""

from __future__ import annotations

import random

import pytest

from repro.apps.defragmenter import Defragmenter
from repro.core.config import MannersConfig
from repro.simos.cpu import CpuPriority
from repro.simos.filesystem import Volume, populate_volume
from repro.simos.kernel import Kernel
from repro.simos.perfcounters import PerfCounterRegistry
from repro.simos.sim_manners import SimManners


def build(seed=1, file_count=60, fragment_range=(2, 6)):
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    volume = Volume("C", "C", total_blocks=60_000)
    rng = random.Random(seed)
    populate_volume(
        volume, rng, file_count=file_count,
        size_range=(16 * 1024, 128 * 1024), fragment_range=fragment_range,
    )
    return kernel, volume


class TestOnePass:
    def test_pass_defragments_everything(self):
        kernel, volume = build()
        before = volume.mean_fragments_per_file()
        defrag = Defragmenter(kernel, [volume])
        defrag.spawn()
        kernel.run()
        assert before > 1.0
        assert volume.mean_fragments_per_file() == pytest.approx(1.0)
        result = defrag.results["C"]
        assert result.elapsed is not None and result.elapsed > 0
        assert result.totals["move_ops"] > 0
        assert result.totals["blocks_moved"] > result.totals["move_ops"]

    def test_contiguous_volume_is_fast(self):
        kernel, volume = build(fragment_range=(1, 1))
        defrag = Defragmenter(kernel, [volume])
        defrag.spawn()
        kernel.run()
        assert defrag.results["C"].totals["move_ops"] == 0

    def test_publishes_perf_counters(self):
        kernel, volume = build()
        registry = PerfCounterRegistry()
        defrag = Defragmenter(kernel, [volume], registry=registry)
        defrag.spawn()
        kernel.run()
        assert registry.read("defrag", "C.move_ops") == defrag.results["C"].totals["move_ops"]
        assert registry.read("defrag", "C.blocks_moved") > 0

    def test_one_thread_per_volume(self):
        kernel = Kernel(seed=2)
        kernel.add_disk("C")
        kernel.add_disk("D")
        rng = random.Random(2)
        vol_c = Volume("C", "C", total_blocks=30_000)
        vol_d = Volume("D", "D", total_blocks=30_000)
        populate_volume(vol_c, rng, file_count=20, fragment_range=(2, 4),
                        size_range=(16 * 1024, 64 * 1024))
        populate_volume(vol_d, rng, file_count=20, fragment_range=(2, 4),
                        size_range=(16 * 1024, 64 * 1024))
        defrag = Defragmenter(kernel, [vol_c, vol_d])
        threads = defrag.spawn()
        assert len(threads) == 2
        kernel.run()
        assert defrag.results["C"].elapsed is not None
        assert defrag.results["D"].elapsed is not None

    def test_regulated_pass_still_completes(self):
        kernel, volume = build()
        config = MannersConfig(
            bootstrap_testpoints=5, probation_period=0.0, averaging_n=100,
            min_testpoint_interval=0.05,
        )
        manners = SimManners(kernel, config)
        defrag = Defragmenter(kernel, [volume], manners=manners)
        defrag.spawn()
        kernel.run(until=4000.0)
        assert defrag.results["C"].elapsed is not None
        assert volume.mean_fragments_per_file() == pytest.approx(1.0)

    def test_cpu_priority_configurable(self):
        kernel, volume = build()
        defrag = Defragmenter(kernel, [volume], cpu_priority=CpuPriority.LOW)
        threads = defrag.spawn()
        assert threads[0].priority is CpuPriority.LOW
