"""Section-5 exemplar applications: indexer, archiver, compressor, scanner."""

from __future__ import annotations

import random

import pytest

from repro.apps.archiver import ARCHIVE_METRICS, SCAN_METRICS, Archiver
from repro.apps.compressor import Compressor
from repro.apps.dummyload import CpuHog, DiskHog
from repro.apps.indexer import ContentIndexer
from repro.apps.scanner import VirusScanner
from repro.core.config import MannersConfig
from repro.simos.filesystem import Volume, populate_volume
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import SimManners
from repro.simos.workload import Burst


def build(seed=1, file_count=30):
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    volume = Volume("C", "C", total_blocks=120_000)
    rng = random.Random(seed)
    populate_volume(
        volume, rng, file_count=file_count,
        size_range=(16 * 1024, 96 * 1024), fragment_range=(1, 2),
    )
    return kernel, volume


FAST = MannersConfig(
    bootstrap_testpoints=5, probation_period=0.0, averaging_n=100,
    min_testpoint_interval=0.05,
)


class TestContentIndexer:
    def test_indexes_all_files(self):
        kernel, volume = build()
        indexer = ContentIndexer(kernel, volume)
        indexer.spawn()
        kernel.run()
        assert indexer.stats.files_indexed == 30
        assert indexer.stats.bytes_scanned > 0
        assert indexer.stats.indices_added > 0

    def test_regulated_multi_metric(self):
        kernel, volume = build()
        manners = SimManners(kernel, FAST)
        indexer = ContentIndexer(kernel, volume, manners=manners)
        thread = indexer.spawn()
        kernel.run(until=2000.0)
        assert indexer.result.elapsed is not None
        # The two-metric regression calibrated both dimensions.
        trace = manners.traces[thread]
        assert len(trace) > 0


class TestArchiver:
    def test_archives_only_old_files(self):
        kernel, volume = build()
        # Touch half the files to be "new".
        files = list(volume.files())
        for f in files[::2]:
            volume.modify_file(f.file_id, when=100.0)
        archiver = Archiver(kernel, volume, age_cutoff=50.0)
        archiver.spawn()
        kernel.run()
        assert archiver.stats.files_scanned == 30
        assert archiver.stats.files_archived == 15
        assert archiver.stats.bytes_archived > 0

    def test_phased_metric_sets(self):
        kernel, volume = build()
        manners = SimManners(kernel, FAST)
        archiver = Archiver(kernel, volume, age_cutoff=1.0, manners=manners)
        thread = archiver.spawn()
        kernel.run(until=2000.0)
        regulator = None
        # The thread exited; phase sets were allocated during the run.
        assert SCAN_METRICS != ARCHIVE_METRICS
        assert archiver.result.elapsed is not None


class TestCompressor:
    def test_compresses_everything(self):
        kernel, volume = build()
        compressor = Compressor(kernel, volume)
        compressor.spawn()
        kernel.run()
        assert compressor.stats.files_compressed == 30
        assert compressor.stats.bytes_compressed > 0

    def test_single_metric_regulation(self):
        kernel, volume = build()
        manners = SimManners(kernel, FAST)
        compressor = Compressor(kernel, volume, manners=manners)
        thread = compressor.spawn()
        kernel.run(until=2000.0)
        assert compressor.result.elapsed is not None


class TestVirusScanner:
    def test_scans_everything(self):
        kernel, volume = build()
        scanner = VirusScanner(kernel, volume)
        scanner.spawn()
        kernel.run()
        assert scanner.stats.files_scanned == 30
        assert scanner.stats.bytes_scanned > 0


class TestDummyLoads:
    def test_disk_hog_follows_schedule(self):
        kernel = Kernel(seed=4)
        kernel.add_disk("C")
        schedule = [Burst(0.0, 2.0), Burst(5.0, 6.0)]
        hog = DiskHog(kernel, "C", schedule)
        hog.spawn()
        kernel.run(until=10.0)
        assert hog.requests_issued > 0
        # The disk was idle between the bursts: total busy time is bounded
        # by the schedule (+1 request that may straddle a boundary).
        assert kernel.disks["C"].stats.busy_time <= 3.2

    def test_cpu_hog_consumes_cpu(self):
        kernel = Kernel(seed=5)
        schedule = [Burst(0.0, 1.0)]
        hog = CpuHog(kernel, schedule)
        hog.spawn()
        kernel.run(until=5.0)
        assert hog.cpu_consumed == pytest.approx(1.0, abs=0.1)
        assert kernel.cpu.stats.busy_time == pytest.approx(1.0, abs=0.1)
