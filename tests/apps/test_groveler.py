"""The SIS Groveler application."""

from __future__ import annotations

import random

from repro.apps.groveler import Groveler
from repro.core.config import MannersConfig
from repro.simos.filesystem import Volume, populate_volume
from repro.simos.kernel import Kernel
from repro.simos.perfcounters import PerfCounterRegistry
from repro.simos.sim_manners import SimManners


def build(seed=1, file_count=40, duplicate_fraction=0.5):
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    volume = Volume("ris", "C", total_blocks=60_000)
    rng = random.Random(seed)
    populate_volume(
        volume, rng, file_count=file_count,
        size_range=(16 * 1024, 96 * 1024), fragment_range=(1, 2),
        duplicate_fraction=duplicate_fraction,
    )
    return kernel, volume


class TestGroveling:
    def test_finds_and_merges_duplicates(self):
        kernel, volume = build()
        used_before = volume.used_blocks
        groveler = Groveler(kernel, [volume])
        groveler.spawn()
        kernel.run(until=2000.0)
        stats = groveler.stats["ris"]
        assert stats.duplicates_merged > 0
        assert stats.blocks_reclaimed > 0
        assert volume.used_blocks == used_before - stats.blocks_reclaimed
        assert groveler.results["ris"].elapsed is not None

    def test_no_duplicates_nothing_merged(self):
        kernel, volume = build(duplicate_fraction=0.0)
        groveler = Groveler(kernel, [volume])
        groveler.spawn()
        kernel.run(until=2000.0)
        assert groveler.stats["ris"].duplicates_merged == 0
        assert groveler.stats["ris"].files_groveled > 0

    def test_all_files_groveled(self):
        kernel, volume = build(file_count=30)
        groveler = Groveler(kernel, [volume])
        groveler.spawn()
        kernel.run(until=2000.0)
        # Every live file either groveled or already a link.
        assert groveler.stats["ris"].files_groveled == 30

    def test_new_files_picked_up_from_journal(self):
        kernel, volume = build(file_count=10, duplicate_fraction=0.0)
        groveler = Groveler(kernel, [volume], run_until_idle=False)
        groveler.spawn()

        def arrive():
            volume.create_file("late/file", 32 * 1024, when=kernel.now, content_id=1)
        kernel.engine.call_at(10.0, arrive)
        kernel.run(until=30.0)
        assert groveler.stats["ris"].files_groveled == 11

    def test_publishes_perf_counters(self):
        kernel, volume = build()
        registry = PerfCounterRegistry()
        groveler = Groveler(kernel, [volume], registry=registry)
        groveler.spawn()
        kernel.run(until=2000.0)
        assert registry.read("groveler", "ris.read_ops") > 0
        assert registry.read("groveler", "ris.bytes_read") > 0

    def test_two_threads_per_volume(self):
        kernel, volume = build()
        groveler = Groveler(kernel, [volume])
        threads = groveler.spawn()
        assert len(threads) == 2  # scan + main

    def test_regulated_groveler_completes(self):
        kernel, volume = build()
        config = MannersConfig(
            bootstrap_testpoints=5, probation_period=0.0, averaging_n=100,
            min_testpoint_interval=0.05,
        )
        manners = SimManners(kernel, config)
        groveler = Groveler(kernel, [volume], manners=manners)
        groveler.spawn()
        kernel.run(until=4000.0)
        assert groveler.results["ris"].elapsed is not None

    def test_fullest_disk_gets_priority(self):
        kernel = Kernel(seed=3)
        kernel.add_disk("C")
        kernel.add_disk("D")
        rng = random.Random(3)
        # C is fuller (smaller volume, same content).
        vol_c = Volume("C", "C", total_blocks=20_000)
        vol_d = Volume("D", "D", total_blocks=60_000)
        populate_volume(vol_c, rng, file_count=10, size_range=(16 * 1024, 32 * 1024),
                        fragment_range=(1, 1))
        populate_volume(vol_d, rng, file_count=10, size_range=(16 * 1024, 32 * 1024),
                        fragment_range=(1, 1))
        config = MannersConfig(bootstrap_testpoints=5, probation_period=0.0,
                               averaging_n=100, min_testpoint_interval=0.05)
        manners = SimManners(kernel, config)
        groveler = Groveler(kernel, [vol_c, vol_d], manners=manners)
        groveler.spawn()
        sup = manners.supervisor("groveler")
        main_c = groveler.main_threads["C"]
        main_d = groveler.main_threads["D"]
        # Thread priority ranking: fuller disk's thread is strictly higher.
        arbiter = sup._arbiter  # test-only peek at internals
        assert arbiter.priority(main_c) > arbiter.priority(main_d)
        kernel.run(until=500.0)
