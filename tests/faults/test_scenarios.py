"""End-to-end chaos scenarios: every one must pass, deterministically."""

import warnings

import pytest

from repro.core.errors import FaultError
from repro.faults import SCENARIOS, run_scenario

SEEDS = (1, 2, 3)


def _run(name, seed):
    with warnings.catch_warnings():
        # flaky-sink deliberately trips the FanoutSink isolation warning.
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_scenario(name, seed=seed)


class TestRegistry:
    def test_expected_scenarios_present(self):
        assert set(SCENARIOS) == {
            "torn-target-store",
            "clock-jump",
            "stalled-thread",
            "crash-mid-suspension",
            "flaky-sink",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultError):
            run_scenario("meteor-strike")


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", SEEDS)
class TestScenarios:
    def test_scenario_passes(self, name, seed):
        report = _run(name, seed)
        failed = [check for check, ok in report.checks if not ok]
        assert report.ok, f"{name} seed={seed} failed checks: {failed}"
        assert report.name == name
        assert report.seed == seed
        # Every scenario must show the fault AND the regulator's reaction.
        assert report.injected or report.anomalies
        assert report.recoveries or report.anomalies
        assert report.testpoints > 0


@pytest.mark.slow
class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_fingerprint(self, name):
        a = _run(name, 1)
        b = _run(name, 1)
        assert a.fingerprint == b.fingerprint
        assert a.testpoints == b.testpoints
        assert a.injected == b.injected

    def test_different_seeds_differ(self):
        a = _run("torn-target-store", 1)
        b = _run("torn-target-store", 2)
        assert a.fingerprint != b.fingerprint


class TestReport:
    def test_as_dict_is_json_shaped(self):
        report = _run("flaky-sink", 1)
        data = report.as_dict()
        assert data["name"] == "flaky-sink"
        assert isinstance(data["checks"], list)
        assert all(set(c) == {"check", "ok"} for c in data["checks"])
        assert isinstance(data["injected"], list)
