"""Tests for the fault-injection harness and chaos scenarios."""
