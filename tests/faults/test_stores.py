"""Fault seams for persistence and sinks, and the resilience they probe."""

import pytest

from repro.core.errors import FaultError, PersistenceError
from repro.core.persistence import QUARANTINE_SUFFIX, TargetStore
from repro.faults import FlakySink, FlakyTargetStore, corrupt_target_file
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry

STATE = {"sets": {"0": {"arity": 1, "calibration": {"rate": 100.0}}}}


class TestFlakyTargetStore:
    def test_retry_then_succeed(self, tmp_path):
        sleeps = []
        store = FlakyTargetStore(
            tmp_path, save_retries=2, save_backoff=0.05, sleep=sleeps.append
        )
        store.fail_next(1)
        path = store.save("app", STATE)
        assert path.exists()
        assert store.save_failures == 1
        assert store.write_attempts == 2
        assert sleeps == [0.05]
        assert store.load("app") == STATE

    def test_backoff_doubles(self, tmp_path):
        sleeps = []
        store = FlakyTargetStore(
            tmp_path, save_retries=3, save_backoff=0.1, sleep=sleeps.append
        )
        store.fail_next(3)
        store.save("app", STATE)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_exhausted_retries_raise(self, tmp_path):
        store = FlakyTargetStore(
            tmp_path, save_retries=1, save_backoff=0.0, sleep=lambda s: None
        )
        store.fail_next(5)
        with pytest.raises(PersistenceError):
            store.save("app", STATE)
        assert store.save_failures == 2  # first attempt + one retry

    def test_failure_leaves_previous_file_intact(self, tmp_path):
        store = FlakyTargetStore(
            tmp_path, save_retries=0, sleep=lambda s: None
        )
        store.save("app", {"v": 1})
        store.fail_next(1)
        with pytest.raises(PersistenceError):
            store.save("app", {"v": 2})
        assert store.load("app") == {"v": 1}

    def test_save_failures_emit_telemetry(self, tmp_path):
        memory = MemorySink()
        store = FlakyTargetStore(
            tmp_path,
            save_retries=1,
            save_backoff=0.0,
            sleep=lambda s: None,
            telemetry=Telemetry(sink=memory),
        )
        store.fail_next(1)
        store.save("app", STATE)
        kinds = [e.kind for e in memory.events]
        assert "anomaly" in kinds
        assert "recovery" in kinds

    def test_bad_fail_count_rejected(self, tmp_path):
        with pytest.raises(FaultError):
            FlakyTargetStore(tmp_path).fail_next(0)


class TestCorruptAndQuarantine:
    @pytest.mark.parametrize("mode", ["torn", "garbage", "bad_version"])
    def test_corruption_quarantined_on_lenient_load(self, tmp_path, mode):
        store = TargetStore(tmp_path, strict=False)
        store.save("app", STATE)
        corrupt_target_file(store, "app", mode=mode)
        assert store.load("app") is None
        quarantine = store.quarantine_path_for("app")
        assert quarantine.exists()
        assert quarantine.name.endswith(QUARANTINE_SUFFIX)
        assert store.quarantined == [quarantine]
        assert not store.path_for("app").exists()

    def test_corruption_raises_on_strict_load(self, tmp_path):
        store = TargetStore(tmp_path)
        store.save("app", STATE)
        corrupt_target_file(store, "app", mode="torn")
        with pytest.raises(PersistenceError):
            store.load("app")
        assert not store.quarantine_path_for("app").exists()

    def test_per_call_strict_override(self, tmp_path):
        store = TargetStore(tmp_path, strict=True)
        store.save("app", STATE)
        corrupt_target_file(store, "app", mode="garbage")
        assert store.load("app", strict=False) is None
        assert store.quarantined

    def test_quarantine_emits_telemetry(self, tmp_path):
        memory = MemorySink()
        store = TargetStore(
            tmp_path, strict=False, telemetry=Telemetry(sink=memory)
        )
        store.save("app", STATE)
        corrupt_target_file(store, "app", mode="torn")
        store.load("app")
        anomalies = [e for e in memory.events if e.kind == "anomaly"]
        recoveries = [e for e in memory.events if e.kind == "recovery"]
        assert anomalies and anomalies[0].anomaly == "corrupt_target"
        assert recoveries and recoveries[0].action == "quarantine"

    def test_save_after_quarantine_rebuilds(self, tmp_path):
        store = TargetStore(tmp_path, strict=False)
        store.save("app", STATE)
        corrupt_target_file(store, "app", mode="torn")
        assert store.load("app") is None
        store.save("app", {"fresh": True})
        assert store.load("app") == {"fresh": True}

    def test_missing_file_rejected(self, tmp_path):
        store = TargetStore(tmp_path)
        with pytest.raises(FaultError):
            corrupt_target_file(store, "nothing")

    def test_unknown_mode_rejected(self, tmp_path):
        store = TargetStore(tmp_path)
        store.save("app", STATE)
        with pytest.raises(FaultError):
            corrupt_target_file(store, "app", mode="gremlins")


class TestFlakySink:
    def test_raises_after_threshold(self):
        sink = FlakySink(fail_after=2)
        sink.emit(object())
        sink.emit(object())
        with pytest.raises(RuntimeError):
            sink.emit(object())
        assert sink.emitted == 2
        assert sink.raised == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(FaultError):
            FlakySink(fail_after=-1)


class TestInterleavedFaults:
    """Interleaved save/load under injected disk faults and corruption.

    The invariant under audit: a lenient load always returns either the
    last successfully saved state or ``None`` right after a corruption
    was quarantined — never a stale resurrection, never an exception —
    and neither a failed save nor a quarantine ever destroys the last
    good snapshot that preceded it.
    """

    def test_interleaving_preserves_last_good_snapshot(self, tmp_path):
        import random

        rng = random.Random(20260808)
        store = FlakyTargetStore(
            tmp_path,
            strict=False,
            save_retries=1,
            save_backoff=0.0,
            sleep=lambda s: None,
        )
        expected = None  # what a lenient load must return right now
        last_good = None  # newest state a save fully committed
        for step in range(160):
            op = rng.choice(("save", "flaky_save", "failed_save", "corrupt", "load"))
            state = {"step": step}
            if op == "save":
                store.save("app", state)
                expected = last_good = state
            elif op == "flaky_save":
                store.fail_next(1)  # within the retry budget: save still lands
                store.save("app", state)
                expected = last_good = state
            elif op == "failed_save":
                store.fail_next(2)  # first attempt + the one retry: exhausted
                with pytest.raises(PersistenceError):
                    store.save("app", state)
                # The atomic temp-and-rename discipline must leave the
                # previous snapshot untouched.
                assert store.load("app") == expected
            elif op == "corrupt":
                if store.path_for("app").exists():
                    corrupt_target_file(
                        store, "app", mode=rng.choice(("torn", "garbage"))
                    )
                    expected = None  # quarantined at the next load
            else:
                loaded = store.load("app")
                assert loaded == expected
                if expected is None and last_good is not None:
                    # The damaged file was quarantined, not deleted: the
                    # evidence survives for post-mortem.
                    assert store.quarantine_path_for("app").exists()

    def test_rebuild_after_quarantine_never_resurrects_corruption(self, tmp_path):
        store = FlakyTargetStore(
            tmp_path, strict=False, save_retries=0, sleep=lambda s: None
        )
        store.save("app", {"v": 1})
        corrupt_target_file(store, "app", mode="garbage")
        assert store.load("app") is None
        store.fail_next(1)
        with pytest.raises(PersistenceError):
            store.save("app", {"v": 2})
        # The failed rebuild must not have un-quarantined anything.
        assert store.load("app") is None
        store.save("app", {"v": 3})
        assert store.load("app") == {"v": 3}
        assert store.quarantine_path_for("app").exists()
