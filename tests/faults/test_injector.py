"""FaultInjector primitives against the simulated kernel."""

import pytest

from repro.core.errors import FaultError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, SkewedTime
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry
from repro.simos.effects import Delay, DiskRead
from repro.simos.kernel import DiskFault, Kernel


def sleeper(n):
    for _ in range(n):
        yield Delay(1.0)


class TestSkewedTime:
    def test_tracks_base_plus_offset(self):
        t = {"now": 10.0}
        skew = SkewedTime(lambda: t["now"])
        assert skew() == 10.0
        skew.apply("clock_backstep", 4.0)
        assert skew() == 6.0
        skew.apply("clock_jump", 100.0)
        assert skew() == 106.0
        t["now"] = 20.0
        assert skew() == 116.0

    def test_rejects_non_clock_kinds(self):
        skew = SkewedTime(lambda: 0.0)
        with pytest.raises(FaultError):
            skew.apply("stall", 1.0)


class TestStallUnstall:
    def test_stall_freezes_thread_until_unstall(self):
        kernel = Kernel(seed=1)
        thread = kernel.spawn("w1", sleeper(100))
        injector = FaultInjector(kernel)
        injector.register_thread(thread)
        kernel.engine.call_at(5.0, injector.inject, "stall", "w1")
        kernel.engine.call_at(25.0, injector.inject, "unstall", "w1")
        kernel.run(until=10.0)
        assert thread.suspended
        kernel.run(until=40.0)
        assert not thread.suspended
        assert thread.alive  # still working through its delays
        assert [s.kind for s in injector.fired] == ["stall", "unstall"]

    def test_unregistered_target_rejected(self):
        kernel = Kernel(seed=1)
        injector = FaultInjector(kernel)
        with pytest.raises(FaultError):
            injector.inject("stall", "nobody")


class TestCrash:
    def test_crash_kills_running_thread(self):
        kernel = Kernel(seed=1)
        thread = kernel.spawn("w1", sleeper(100))
        injector = FaultInjector(kernel)
        injector.register_thread(thread)
        kernel.engine.call_at(5.0, injector.inject, "crash", "w1")
        end = kernel.run(until=20.0)  # must not raise
        assert end == 20.0
        assert not thread.alive
        assert thread.error is not None

    def test_crash_mid_suspension(self):
        kernel = Kernel(seed=1)
        thread = kernel.spawn("w1", sleeper(100))
        injector = FaultInjector(kernel)
        injector.register_thread(thread)
        kernel.engine.call_at(5.0, injector.inject, "stall", "w1")
        kernel.engine.call_at(8.0, injector.inject, "crash", "w1")
        kernel.run(until=20.0)
        assert not thread.alive
        assert not thread.suspended

    def test_finally_blocks_run_on_kill(self):
        seen = []

        def body():
            try:
                yield Delay(100.0)
            finally:
                seen.append("cleaned")

        kernel = Kernel(seed=1)
        thread = kernel.spawn("w1", body())
        kernel.engine.call_at(1.0, kernel.kill_thread, thread)
        kernel.run(until=5.0)
        assert seen == ["cleaned"]


class TestDiskFault:
    def test_faulted_read_raises_in_thread(self):
        caught = []

        def reader():
            for i in range(5):
                try:
                    yield DiskRead("C", i, 4096)
                except DiskFault as exc:
                    caught.append(str(exc))

        kernel = Kernel(seed=1)
        kernel.add_disk("C")
        thread = kernel.spawn("r", reader())
        injector = FaultInjector(kernel)
        kernel.engine.call_at(0.0, injector.inject, "disk_fail", "C", 2.0)
        kernel.run(until=10.0)
        assert len(caught) == 2
        assert thread.alive is False  # generator completed normally
        assert thread.error is None

    def test_uncaught_fault_fails_thread(self):
        def reader():
            yield DiskRead("C", 0, 4096)

        kernel = Kernel(seed=1)
        kernel.add_disk("C")
        kernel.spawn("r", reader())
        kernel.inject_disk_fault("C", 1)
        with pytest.raises(Exception):
            kernel.run(until=10.0)

    def test_unknown_disk_rejected(self):
        kernel = Kernel(seed=1)
        with pytest.raises(Exception):
            kernel.inject_disk_fault("Z", 1)


class TestArm:
    def test_arm_schedules_plan(self):
        kernel = Kernel(seed=1)
        thread = kernel.spawn("w1", sleeper(100))
        plan = FaultPlan(
            [
                FaultSpec(at=3.0, kind="stall", target="w1"),
                FaultSpec(at=6.0, kind="unstall", target="w1"),
            ]
        )
        injector = FaultInjector(kernel, plan)
        injector.register_thread(thread)
        assert injector.arm() == 2
        kernel.run(until=10.0)
        assert [s.kind for s in injector.fired] == ["stall", "unstall"]
        assert [s.at for s in injector.fired] == [3.0, 6.0]

    def test_arm_rejects_non_dispatchable_kinds(self):
        kernel = Kernel(seed=1)
        plan = FaultPlan([FaultSpec(at=1.0, kind="torn_file", target="app")])
        with pytest.raises(FaultError):
            FaultInjector(kernel, plan).arm()

    def test_arm_rejects_unregistered_targets(self):
        kernel = Kernel(seed=1)
        plan = FaultPlan([FaultSpec(at=1.0, kind="crash", target="ghost")])
        with pytest.raises(FaultError):
            FaultInjector(kernel, plan).arm()

    def test_clock_fault_requires_skew(self):
        kernel = Kernel(seed=1)
        injector = FaultInjector(kernel)
        with pytest.raises(FaultError):
            injector.inject("clock_jump", "clock", 60.0)


class TestTelemetry:
    def test_faults_emit_events(self):
        memory = MemorySink()
        kernel = Kernel(seed=1)
        thread = kernel.spawn("w1", sleeper(10))
        skew = SkewedTime(lambda: kernel.now)
        injector = FaultInjector(
            kernel, telemetry=Telemetry(sink=memory), skew=skew
        )
        injector.register_thread(thread)
        kernel.engine.call_at(2.0, injector.inject, "stall", "w1")
        kernel.engine.call_at(3.0, injector.inject, "clock_jump", "clock", 60.0)
        kernel.run(until=5.0)
        faults = [e for e in memory.events if e.kind == "fault"]
        assert [e.fault for e in faults] == ["stall", "clock_jump"]
        # The clock event is stamped in the skewed frame.
        assert faults[1].t == pytest.approx(63.0)
