"""FaultPlan/FaultSpec: validation, ordering, deterministic generation."""

import pytest

from repro.core.errors import FaultError
from repro.faults import KNOWN_FAULTS, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec(at=5.0, kind="clock_jump", target="clock", param=60.0)
        assert spec.at == 5.0
        assert spec.kind == "clock_jump"

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(at=1.0, kind="meteor_strike")

    @pytest.mark.parametrize("at", [float("nan"), float("inf"), -1.0])
    def test_bad_time_rejected(self, at):
        with pytest.raises(FaultError):
            FaultSpec(at=at, kind="stall", target="w1")

    @pytest.mark.parametrize("param", [float("nan"), float("inf")])
    def test_non_finite_param_rejected(self, param):
        with pytest.raises(FaultError):
            FaultSpec(at=1.0, kind="clock_jump", param=param)


class TestFaultPlan:
    def test_specs_sorted_by_time(self):
        plan = FaultPlan(
            [
                FaultSpec(at=9.0, kind="stall", target="w1"),
                FaultSpec(at=1.0, kind="clock_jump", param=60.0),
                FaultSpec(at=5.0, kind="disk_fail", target="C", param=1.0),
            ]
        )
        assert [s.at for s in plan] == [1.0, 5.0, 9.0]
        assert len(plan) == 3

    def test_of_kind_filters(self):
        plan = FaultPlan(
            [
                FaultSpec(at=1.0, kind="stall", target="w1"),
                FaultSpec(at=2.0, kind="unstall", target="w1"),
                FaultSpec(at=3.0, kind="stall", target="w2"),
            ]
        )
        stalls = plan.of_kind("stall")
        assert [s.target for s in stalls] == ["w1", "w2"]

    def test_empty_plan(self):
        assert len(FaultPlan()) == 0
        assert list(FaultPlan()) == []


class TestGenerate:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(seed=7, duration=100.0, count=8)
        b = FaultPlan.generate(seed=7, duration=100.0, count=8)
        assert a.specs == b.specs

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(seed=1, duration=100.0, count=8)
        b = FaultPlan.generate(seed=2, duration=100.0, count=8)
        assert a.specs != b.specs

    def test_faults_land_inside_duration(self):
        plan = FaultPlan.generate(seed=3, duration=50.0, count=10)
        for spec in plan:
            assert 0.0 < spec.at < 50.0 + 15.0  # paired unstalls may trail
            assert spec.kind in KNOWN_FAULTS

    def test_stalls_are_paired_with_unstalls(self):
        plan = FaultPlan.generate(
            seed=5, duration=100.0, count=12, kinds=("stall",)
        )
        assert len(plan.of_kind("stall")) == len(plan.of_kind("unstall")) == 12

    def test_bad_arguments_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.generate(seed=1, count=0)
        with pytest.raises(FaultError):
            FaultPlan.generate(seed=1, duration=0.0)
        with pytest.raises(FaultError):
            FaultPlan.generate(seed=1, kinds=("meteor_strike",))
        with pytest.raises(FaultError):
            FaultPlan.generate(seed=1, kinds=())
