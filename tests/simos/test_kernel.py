"""Kernel: thread lifecycle, effects, and the debug interface."""

from __future__ import annotations

import pytest

from repro.simos.cpu import CpuPriority
from repro.simos.effects import (
    Condition,
    Delay,
    DiskRead,
    DiskWrite,
    SignalCondition,
    UseCPU,
    WaitCondition,
    Yield,
)
from repro.simos.engine import SimulationError
from repro.simos.kernel import Kernel, ThreadState


class TestLifecycle:
    def test_thread_runs_to_completion(self):
        kernel = Kernel()
        log = []

        def body():
            log.append(kernel.now)
            yield Delay(1.0)
            log.append(kernel.now)
            return "done"

        thread = kernel.spawn("t", body())
        kernel.run()
        assert log == [0.0, 1.0]
        assert thread.state is ThreadState.DONE
        assert thread.result == "done"

    def test_start_after(self):
        kernel = Kernel()
        seen = []

        def body():
            seen.append(kernel.now)
            yield Delay(0.0)

        kernel.spawn("t", body(), start_after=5.0)
        kernel.run()
        assert seen == [5.0]

    def test_thread_exception_surfaces_in_run(self):
        kernel = Kernel()

        def body():
            yield Delay(1.0)
            raise RuntimeError("boom")

        thread = kernel.spawn("t", body())
        with pytest.raises(SimulationError):
            kernel.run()
        assert thread.state is ThreadState.FAILED
        assert isinstance(thread.error, RuntimeError)

    def test_unknown_effect_fails_thread(self):
        kernel = Kernel()

        def body():
            yield "not an effect"

        kernel.spawn("t", body())
        with pytest.raises(SimulationError):
            kernel.run()


class TestEffects:
    def test_delay_advances_time(self):
        kernel = Kernel()
        times = []

        def body():
            yield Delay(2.0)
            times.append(kernel.now)
            yield Delay(3.0)
            times.append(kernel.now)

        kernel.spawn("t", body())
        kernel.run()
        assert times == [2.0, 5.0]

    def test_cpu_effect_respects_priority(self):
        kernel = Kernel()
        finish = {}

        def burner(name, n=50, slice_len=0.02):
            for _ in range(n):
                yield UseCPU(slice_len)
            finish[name] = kernel.now

        kernel.spawn("hi", burner("hi"), priority=CpuPriority.NORMAL)
        kernel.spawn("lo", burner("lo"), priority=CpuPriority.LOW)
        kernel.run()
        assert finish["hi"] == pytest.approx(1.0, abs=0.1)
        assert finish["lo"] == pytest.approx(2.0, abs=0.1)

    def test_disk_effects(self):
        kernel = Kernel()
        kernel.add_disk("C")

        def body():
            yield DiskRead("C", 0, 65536)
            yield DiskWrite("C", 100, 4096)

        kernel.spawn("t", body())
        kernel.run()
        assert kernel.disks["C"].stats.requests == 2

    def test_missing_disk_fails(self):
        kernel = Kernel()

        def body():
            yield DiskRead("nope", 0, 4096)

        kernel.spawn("t", body())
        with pytest.raises(SimulationError):
            kernel.run()

    def test_condition_wait_and_signal(self):
        kernel = Kernel()
        cond = Condition("work")
        got = []

        def consumer():
            payload = yield WaitCondition(cond)
            got.append((kernel.now, payload))

        def producer():
            yield Delay(3.0)
            yield SignalCondition(cond, payload="item")

        kernel.spawn("c", consumer())
        kernel.spawn("p", producer())
        kernel.run()
        assert got == [(3.0, "item")]

    def test_signal_broadcast(self):
        kernel = Kernel()
        cond = Condition()
        woken = []

        def waiter(name):
            yield WaitCondition(cond)
            woken.append(name)

        def signaller():
            yield Delay(1.0)
            yield SignalCondition(cond, broadcast=True)

        for n in ("a", "b", "c"):
            kernel.spawn(n, waiter(n))
        kernel.spawn("s", signaller())
        kernel.run()
        assert sorted(woken) == ["a", "b", "c"]

    def test_external_signal(self):
        kernel = Kernel()
        cond = Condition()
        woken = []

        def waiter():
            yield WaitCondition(cond)
            woken.append(kernel.now)

        kernel.spawn("w", waiter())
        kernel.engine.call_at(4.0, kernel.signal, cond)
        kernel.run()
        assert woken == [4.0]

    def test_yield_effect(self):
        kernel = Kernel()
        order = []

        def spinner(name):
            for _ in range(3):
                order.append(name)
                yield Yield()

        kernel.spawn("a", spinner("a"))
        kernel.spawn("b", spinner("b"))
        kernel.run()
        # Yield lets same-time threads interleave.
        assert order == ["a", "b", "a", "b", "a", "b"]


class TestDebugInterface:
    def test_suspend_stops_cpu_consumption(self):
        kernel = Kernel()
        finish = {}

        def burner():
            yield UseCPU(1.0)
            finish["t"] = kernel.now

        thread = kernel.spawn("t", burner())
        kernel.engine.call_at(0.3, kernel.suspend_thread, thread)
        kernel.engine.call_at(2.3, kernel.resume_thread, thread)
        kernel.run()
        # 0.3 s of work done, 2.0 s suspended, 0.7 s more work.
        assert finish["t"] == pytest.approx(3.0, abs=0.05)

    def test_suspend_parks_disk_completion(self):
        kernel = Kernel()
        kernel.add_disk("C")
        finish = {}

        def body():
            yield DiskRead("C", 500_000, 65536)
            finish["t"] = kernel.now

        thread = kernel.spawn("t", body())
        # Suspend almost immediately; the disk op completes while the
        # thread is suspended, but the thread only advances on resume.
        kernel.engine.call_at(0.001, kernel.suspend_thread, thread)
        kernel.engine.call_at(5.0, kernel.resume_thread, thread)
        kernel.run()
        assert finish["t"] == pytest.approx(5.0, abs=0.01)

    def test_suspend_during_sleep(self):
        kernel = Kernel()
        finish = {}

        def body():
            yield Delay(1.0)
            finish["t"] = kernel.now

        thread = kernel.spawn("t", body())
        kernel.engine.call_at(0.5, kernel.suspend_thread, thread)
        kernel.engine.call_at(3.0, kernel.resume_thread, thread)
        kernel.run()
        assert finish["t"] == pytest.approx(3.0, abs=0.01)

    def test_suspend_resume_idempotent(self):
        kernel = Kernel()

        def body():
            yield Delay(1.0)

        thread = kernel.spawn("t", body())
        kernel.suspend_thread(thread)
        kernel.suspend_thread(thread)
        kernel.resume_thread(thread)
        kernel.resume_thread(thread)
        kernel.run()
        assert thread.state is ThreadState.DONE

    def test_suspend_before_first_step(self):
        kernel = Kernel()
        seen = []

        def body():
            seen.append(kernel.now)
            yield Delay(0.0)

        thread = kernel.spawn("t", body())
        kernel.suspend_thread(thread)
        kernel.engine.call_at(2.0, kernel.resume_thread, thread)
        kernel.run()
        assert seen == [2.0]


class TestListeners:
    def test_lifecycle_events_emitted(self):
        kernel = Kernel()
        events = []
        kernel.add_listener(lambda kind, thread, now: events.append(kind))

        def body():
            yield Delay(1.0)

        kernel.spawn("t", body())
        kernel.run()
        assert events[0] == "spawn"
        assert "run" in events
        assert "block" in events
        assert events[-1] == "exit"

    def test_duplicate_disk_rejected(self):
        kernel = Kernel()
        kernel.add_disk("C")
        with pytest.raises(SimulationError):
            kernel.add_disk("C")

    def test_duplicate_handler_rejected(self):
        kernel = Kernel()
        with pytest.raises(SimulationError):
            kernel.register_handler(Delay, lambda t, e: None)
