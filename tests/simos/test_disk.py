"""Disk model: seek/rotation/transfer, FCFS, symmetry."""

from __future__ import annotations

import pytest

from repro.simos.bus import Bus
from repro.simos.disk import CDROM_PARAMS, Disk
from repro.simos.engine import Engine, SimulationError


def _complete(disk, engine, kind, block, nbytes):
    done = []
    disk.submit(kind, block, nbytes, lambda: done.append(engine.now))
    engine.run()
    return done[0]


class TestServiceTimes:
    def test_read_takes_positive_time(self):
        engine = Engine()
        disk = Disk(engine)
        t = _complete(disk, engine, "read", 1000, 65536)
        assert t > 0.0

    def test_service_time_has_sane_magnitude(self):
        """A random 64 KB read on the modeled drive takes ~5-40 ms."""
        engine = Engine()
        disk = Disk(engine)
        t = _complete(disk, engine, "read", 500_000, 65536)
        assert 0.005 <= t <= 0.04

    def test_sequential_reads_skip_positioning(self):
        engine = Engine()
        disk = Disk(engine)
        times = []
        blocks_per_64k = 65536 // disk.params.block_size
        prev = 0.0
        for i in range(8):
            done = []
            disk.submit("read", 1000 + i * blocks_per_64k, 65536, lambda: done.append(engine.now))
            engine.run()
            times.append(done[0] - prev)
            prev = done[0]
        # After the first (seek) the rest ride the track buffer: only
        # overhead + transfer (~6.9 ms at 10 MB/s).
        for t in times[1:]:
            assert t == pytest.approx(65536 / disk.params.transfer_rate, rel=0.2)
        assert disk.stats.sequential_hits >= 7

    def test_long_seeks_cost_more_on_average(self):
        near_total = far_total = 0.0
        for seed in range(8):
            engine = Engine()
            disk = Disk(engine, seed=seed)
            _complete(disk, engine, "read", 0, 4096)  # park head at 0
            near_total += _complete(disk, engine, "read", 2_000, 4096)
            engine2 = Engine()
            disk2 = Disk(engine2, seed=seed)
            _complete(disk2, engine2, "read", 0, 4096)
            far_total += _complete(disk2, engine2, "read", 1_000_000, 4096)
        assert far_total > near_total

    def test_cdrom_is_much_slower(self):
        engine = Engine()
        cd = Disk(engine, name="cd", params=CDROM_PARAMS)
        t = _complete(cd, engine, "read", 100_000, 65536)
        engine2 = Engine()
        hd = Disk(engine2)
        t_hd = _complete(hd, engine2, "read", 100_000, 65536)
        assert t > 3 * t_hd


class TestQueueing:
    def test_fcfs_order(self):
        engine = Engine()
        disk = Disk(engine)
        order = []
        for name, block in (("a", 10), ("b", 500_000), ("c", 20)):
            disk.submit("read", block, 4096, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_symmetric_contention(self):
        """Two identical request streams see similar total service."""
        engine = Engine()
        disk = Disk(engine)
        finish = {}

        def stream(name, offset, count=50):
            remaining = [count]

            def next_request():
                if remaining[0] == 0:
                    finish[name] = engine.now
                    return
                remaining[0] -= 1
                block = (offset + remaining[0] * 9973) % 1_000_000
                disk.submit("read", block, 65536, next_request)

            next_request()

        stream("a", 0)
        stream("b", 1)
        engine.run()
        ratio = finish["a"] / finish["b"]
        assert 0.8 <= ratio <= 1.25

    def test_favor_small_creates_asymmetry(self):
        """The section-3 ablation: a small-transfer scheduler is unfair."""
        engine = Engine()
        disk = Disk(engine, favor_small=True)
        order = []
        # Seed a long queue: one big transfer then many small ones.
        disk.submit("read", 0, 1_048_576, lambda: order.append("big"))
        disk.submit("read", 500_000, 1_048_576, lambda: order.append("big2"))
        for i in range(5):
            disk.submit("read", i * 1000, 4096, lambda i=i: order.append(f"small{i}"))
        engine.run()
        # All smalls jump ahead of the second big transfer.
        assert order.index("big2") > order.index("small4")


class TestValidation:
    def test_unknown_kind_rejected(self):
        disk = Disk(Engine())
        with pytest.raises(SimulationError):
            disk.submit("scan", 0, 4096, lambda: None)

    def test_out_of_range_block_rejected(self):
        disk = Disk(Engine())
        with pytest.raises(SimulationError):
            disk.submit("read", disk.params.blocks, 4096, lambda: None)

    def test_zero_bytes_rejected(self):
        disk = Disk(Engine())
        with pytest.raises(SimulationError):
            disk.submit("read", 0, 0, lambda: None)

    def test_stats_accumulate(self):
        engine = Engine()
        disk = Disk(engine)
        _complete(disk, engine, "read", 0, 8192)
        _complete(disk, engine, "write", 100, 4096)
        assert disk.stats.requests == 2
        assert disk.stats.bytes_read == 8192
        assert disk.stats.bytes_written == 4096


class TestBusCoupling:
    def test_shared_bus_serializes_transfers(self):
        """Two disks transferring simultaneously interfere via the bus."""

        def run(shared: bool) -> float:
            engine = Engine()
            bus = Bus(engine, 40_000_000.0) if shared else None
            disks = [
                Disk(engine, name=f"d{i}", bus=bus, seed=i) for i in range(2)
            ]
            finish = {}

            def stream(disk, name, count=40):
                remaining = [count]

                def next_request():
                    if remaining[0] == 0:
                        finish[name] = engine.now
                        return
                    remaining[0] -= 1
                    disk.submit("read", (remaining[0] * 7919) % 500_000, 262_144, next_request)

                next_request()

            for i, d in enumerate(disks):
                stream(d, f"s{i}")
            engine.run()
            return max(finish.values())

        assert run(shared=True) > run(shared=False)

    def test_bus_stats(self):
        engine = Engine()
        bus = Bus(engine, 40_000_000.0)
        disk = Disk(engine, bus=bus)
        done = []
        disk.submit("read", 0, 65536, lambda: done.append(engine.now))
        engine.run()
        assert bus.stats.transfers == 1
        assert bus.stats.busy_time > 0.0
