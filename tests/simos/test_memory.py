"""Memory model and the section-3 asymmetry limitation."""

from __future__ import annotations

import pytest

from repro.core.config import MannersConfig
from repro.core.signtest import Judgment
from repro.simos.engine import SimulationError
from repro.simos.kernel import Kernel
from repro.simos.memory import MemoryManager, TouchMemory
from repro.simos.sim_manners import MannersTestpoint, SimManners


class TestResidencyPolicy:
    def test_fits_in_memory_all_resident(self):
        kernel = Kernel()
        mem = MemoryManager(kernel.engine, frames=100)
        mem.declare("a", 40)
        mem.declare("b", 50)
        assert mem.residency("a") == 1.0
        assert mem.residency("b") == 1.0
        assert not mem.oversubscribed

    def test_oversubscription_favors_first(self):
        kernel = Kernel()
        mem = MemoryManager(kernel.engine, frames=100)
        mem.declare("old", 80)
        mem.declare("new", 80)
        assert mem.residency("old") == 1.0
        assert mem.residency("new") == pytest.approx(0.25)
        assert mem.oversubscribed

    def test_fault_probability_complements_residency(self):
        kernel = Kernel()
        mem = MemoryManager(kernel.engine, frames=50)
        mem.declare("a", 100)
        assert mem.fault_probability("a") == pytest.approx(0.5)

    def test_undeclared_process_rejected(self):
        kernel = Kernel()
        mem = MemoryManager(kernel.engine, frames=10)
        with pytest.raises(SimulationError):
            mem.residency("ghost")

    def test_validation(self):
        kernel = Kernel()
        with pytest.raises(SimulationError):
            MemoryManager(kernel.engine, frames=0)
        mem = MemoryManager(kernel.engine, frames=10)
        with pytest.raises(SimulationError):
            mem.declare("a", 0)


class TestTouchEffect:
    def test_resident_touches_are_free(self):
        kernel = Kernel()
        mem = MemoryManager(kernel.engine, frames=100)
        mem.attach(kernel)
        mem.declare("app", 50)

        def body():
            for _ in range(100):
                yield TouchMemory()

        kernel.spawn("t", body(), process="app")
        kernel.run()
        assert kernel.now == pytest.approx(0.0)
        assert mem.faults["app"] == 0

    def test_thrashing_costs_fault_delays(self):
        kernel = Kernel()
        mem = MemoryManager(kernel.engine, frames=50, fault_service=0.01)
        mem.attach(kernel)
        mem.declare("fav", 50)
        mem.declare("victim", 50)  # zero residency

        def body():
            for _ in range(100):
                yield TouchMemory()

        kernel.spawn("t", body(), process="victim")
        kernel.run()
        assert mem.faults["victim"] == 100
        assert kernel.now == pytest.approx(1.0)


class TestAsymmetryLimitation:
    def test_favored_li_process_evades_regulation(self):
        """Section 3, demonstrated: a favored low-importance process
        thrashes the high-importance process without its own progress
        dropping, so progress-based regulation never engages."""
        kernel = Kernel(seed=1)
        mem = MemoryManager(kernel.engine, frames=100, fault_service=0.01)
        mem.attach(kernel)
        # The LI process registered first (long-resident service): favored.
        mem.declare("li", 80)
        mem.declare("hi", 80)

        config = MannersConfig(
            bootstrap_testpoints=10, probation_period=0.0, averaging_n=100,
            min_testpoint_interval=0.05,
        )
        manners = SimManners(kernel, config)

        def li_body():
            done = 0.0
            for _ in range(4000):
                yield TouchMemory()
                done += 1.0
                yield MannersTestpoint((done,))

        hi_progress = {"touches": 0}

        def hi_body():
            for _ in range(4000):
                yield TouchMemory()
                hi_progress["touches"] += 1

        li = kernel.spawn("li", li_body(), process="li")
        manners.regulate(li)
        kernel.spawn("hi", hi_body(), process="hi")
        kernel.run(until=200.0)

        # The HI process thrashed...
        assert mem.faults["hi"] > 1000
        # ...the LI process did not...
        assert mem.faults["li"] < 100
        # ...so MS Manners saw no progress drop and never suspended it:
        # the asymmetry invalidates the key assumption, as the paper says.
        trace = manners.traces[li]
        poors = sum(1 for r in trace.records if r.judgment is Judgment.POOR)
        assert poors <= 2
