"""Filesystem: extents, allocation, journal, relocation, SIS merges."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simos.engine import SimulationError
from repro.simos.filesystem import Volume, populate_volume


def make_volume(blocks=10_000) -> Volume:
    return Volume("C", "C", total_blocks=blocks)


class TestAllocation:
    def test_create_file_accounts_blocks(self):
        vol = make_volume()
        f = vol.create_file("a", 10 * 4096, when=0.0)
        assert f.blocks == 10
        assert vol.used_blocks == 10
        assert vol.free_blocks == 10_000 - 10

    def test_delete_frees_blocks(self):
        vol = make_volume()
        f = vol.create_file("a", 10 * 4096, when=0.0)
        vol.delete_file(f.file_id, when=1.0)
        assert vol.free_blocks == 10_000
        assert vol.file_count == 0

    def test_free_extents_coalesce(self):
        vol = make_volume()
        files = [vol.create_file(f"f{i}", 4096, when=0.0) for i in range(5)]
        for f in files:
            vol.delete_file(f.file_id, when=1.0)
        assert vol.largest_free_extent() == 10_000

    def test_fragmented_allocation(self):
        vol = make_volume()
        f = vol.create_file("a", 100 * 4096, when=0.0, fragments=5, spread_seed=3)
        assert f.fragments == 5
        assert f.blocks == 100

    def test_full_volume_rejected(self):
        vol = make_volume(blocks=10)
        with pytest.raises(SimulationError, match="full"):
            vol.create_file("a", 11 * 4096, when=0.0)

    def test_duplicate_path_rejected(self):
        vol = make_volume()
        vol.create_file("a", 4096, when=0.0)
        with pytest.raises(SimulationError):
            vol.create_file("a", 4096, when=0.0)

    def test_no_contiguous_run(self):
        vol = make_volume(blocks=100)
        # Fragment the free space completely with alternating files.
        keep = []
        for i in range(50):
            keep.append(vol.create_file(f"k{i}", 4096, when=0.0))
            vol.create_file(f"d{i}", 4096, when=0.0)
        for f in keep:
            vol.delete_file(f.file_id, when=1.0)
        with pytest.raises(SimulationError, match="contiguous"):
            vol.allocate(2, fragments=1)


class TestJournal:
    def test_create_logs_record(self):
        vol = make_volume()
        f = vol.create_file("a", 4096, when=1.5)
        records = vol.journal_since(0)
        assert len(records) == 1
        assert records[0].reason == "create"
        assert records[0].file_id == f.file_id
        assert records[0].when == 1.5

    def test_journal_since_is_exclusive(self):
        vol = make_volume()
        vol.create_file("a", 4096, when=0.0)
        usn = vol.last_usn
        vol.create_file("b", 4096, when=1.0)
        records = vol.journal_since(usn)
        assert [r.reason for r in records] == ["create"]
        assert vol.journal_since(vol.last_usn) == []

    def test_modify_and_delete_logged(self):
        vol = make_volume()
        f = vol.create_file("a", 4096, when=0.0)
        vol.modify_file(f.file_id, when=1.0, new_content_id=99)
        vol.delete_file(f.file_id, when=2.0)
        reasons = [r.reason for r in vol.journal_since(0)]
        assert reasons == ["create", "modify", "delete"]

    def test_usns_strictly_increase(self):
        vol = make_volume()
        for i in range(10):
            vol.create_file(f"f{i}", 4096, when=0.0)
        usns = [r.usn for r in vol.journal_since(0)]
        assert usns == sorted(usns)
        assert len(set(usns)) == len(usns)


class TestReadPlan:
    def test_covers_whole_file(self):
        vol = make_volume()
        f = vol.create_file("a", 300_000, when=0.0, fragments=4, spread_seed=1)
        plan = vol.read_plan(f.file_id)
        assert sum(nbytes for _, nbytes in plan) == 300_000

    def test_chunk_cap(self):
        vol = make_volume()
        f = vol.create_file("a", 1_000_000, when=0.0)
        plan = vol.read_plan(f.file_id, chunk_bytes=65536)
        assert all(nbytes <= 65536 for _, nbytes in plan)

    def test_disk_block_offset_applied(self):
        vol = Volume("C", "C", total_blocks=100, start_block=5000)
        f = vol.create_file("a", 4096, when=0.0)
        plan = vol.read_plan(f.file_id)
        assert plan[0][0] >= 5000


class TestRelocation:
    def test_contiguous_file_needs_no_plan(self):
        vol = make_volume()
        f = vol.create_file("a", 40_960, when=0.0, fragments=1)
        assert vol.relocation_plan(f.file_id) is None

    def test_plan_and_commit_defragment(self):
        vol = make_volume()
        f = vol.create_file("a", 40 * 4096, when=0.0, fragments=4, spread_seed=7)
        plan = vol.relocation_plan(f.file_id)
        assert plan is not None
        reads, writes, new_extents = plan
        assert sum(n for _, n in reads) == f.size
        assert sum(n for _, n in writes) == f.size
        assert len(new_extents) == 1
        vol.commit_relocation(f.file_id, new_extents, when=1.0)
        assert vol.file(f.file_id).fragments == 1
        # Block accounting is conserved.
        assert vol.used_blocks == 40

    def test_abort_restores_free_space(self):
        vol = make_volume()
        f = vol.create_file("a", 40 * 4096, when=0.0, fragments=4, spread_seed=7)
        free_before = vol.free_blocks
        plan = vol.relocation_plan(f.file_id)
        assert plan is not None
        _, _, new_extents = plan
        vol.abort_relocation(new_extents)
        assert vol.free_blocks == free_before

    def test_relocation_logged(self):
        vol = make_volume()
        f = vol.create_file("a", 40 * 4096, when=0.0, fragments=4, spread_seed=7)
        _, _, new_extents = vol.relocation_plan(f.file_id)
        vol.commit_relocation(f.file_id, new_extents, when=2.0)
        assert vol.journal_since(0)[-1].reason == "relocate"


class TestSisMerge:
    def test_merge_reclaims_blocks(self):
        vol = make_volume()
        a = vol.create_file("a", 10 * 4096, when=0.0, content_id=7)
        b = vol.create_file("b", 10 * 4096, when=0.0, content_id=7)
        reclaimed = vol.merge_duplicate(b.file_id, a.file_id, when=1.0)
        assert reclaimed == 10
        assert vol.used_blocks == 10
        assert vol.file(b.file_id).sis_link == a.file_id

    def test_merge_requires_equal_content(self):
        vol = make_volume()
        a = vol.create_file("a", 4096, when=0.0, content_id=1)
        b = vol.create_file("b", 4096, when=0.0, content_id=2)
        with pytest.raises(SimulationError):
            vol.merge_duplicate(b.file_id, a.file_id, when=1.0)

    def test_double_merge_is_noop(self):
        vol = make_volume()
        a = vol.create_file("a", 4096, when=0.0, content_id=1)
        b = vol.create_file("b", 4096, when=0.0, content_id=1)
        vol.merge_duplicate(b.file_id, a.file_id, when=1.0)
        assert vol.merge_duplicate(b.file_id, a.file_id, when=2.0) == 0

    def test_link_reads_through_to_keeper(self):
        vol = make_volume()
        a = vol.create_file("a", 8 * 4096, when=0.0, content_id=1)
        b = vol.create_file("b", 8 * 4096, when=0.0, content_id=1)
        vol.merge_duplicate(b.file_id, a.file_id, when=1.0)
        assert vol.read_plan(b.file_id) == vol.read_plan(a.file_id)

    def test_modify_clears_link(self):
        vol = make_volume()
        a = vol.create_file("a", 4096, when=0.0, content_id=1)
        b = vol.create_file("b", 4096, when=0.0, content_id=1)
        vol.merge_duplicate(b.file_id, a.file_id, when=1.0)
        vol.modify_file(b.file_id, when=2.0, new_content_id=5)
        assert vol.file(b.file_id).sis_link is None


class TestPopulate:
    def test_populate_respects_parameters(self):
        vol = Volume("C", "C", total_blocks=200_000)
        rng = random.Random(1)
        files = populate_volume(
            vol, rng, file_count=100, duplicate_fraction=0.5
        )
        assert len(files) == 100
        assert vol.file_count == 100  # fillers deleted
        content_ids = [f.content_id for f in files]
        assert len(set(content_ids)) < 100  # duplicates exist

    def test_aging_spreads_files(self):
        """Aged layout: files are interleaved with holes, not densely packed."""
        vol = Volume("C", "C", total_blocks=200_000)
        rng = random.Random(2)
        files = populate_volume(vol, rng, file_count=100)
        first_starts = [f.extents[0].start for f in files]
        span = max(first_starts) - min(first_starts)
        used = sum(f.blocks for f in files)
        # The deleted fillers leave the live files spread over a region
        # substantially larger than their own footprint.
        assert span > 1.5 * used


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 60))
    def test_block_conservation_under_churn(self, seed, operations):
        """used + free == total after any create/delete/relocate sequence."""
        vol = make_volume(blocks=5_000)
        rng = random.Random(seed)
        live: list[int] = []
        for i in range(operations):
            action = rng.random()
            if action < 0.5 or not live:
                blocks = rng.randint(1, 40)
                if blocks <= vol.free_blocks:
                    try:
                        f = vol.create_file(
                            f"f{i}", blocks * 4096, when=float(i),
                            fragments=rng.randint(1, 4),
                            spread_seed=rng.randrange(1 << 20),
                        )
                        live.append(f.file_id)
                    except SimulationError:
                        pass  # fragmentation can defeat allocation
            elif action < 0.8:
                fid = live.pop(rng.randrange(len(live)))
                vol.delete_file(fid, when=float(i))
            else:
                fid = rng.choice(live)
                plan = vol.relocation_plan(fid)
                if plan is not None:
                    vol.commit_relocation(fid, plan[2], when=float(i))
            assert vol.used_blocks + vol.free_blocks == 5_000
            total_file_blocks = sum(vol.file(fid).blocks for fid in live)
            assert total_file_blocks == vol.used_blocks

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_extents_never_overlap(self, seed):
        vol = make_volume(blocks=3_000)
        rng = random.Random(seed)
        for i in range(20):
            try:
                vol.create_file(
                    f"f{i}", rng.randint(1, 50) * 4096, when=0.0,
                    fragments=rng.randint(1, 5),
                    spread_seed=rng.randrange(1 << 20),
                )
            except SimulationError:
                break
        claimed: set[int] = set()
        for f in vol.files():
            for extent in f.extents:
                blocks = set(range(extent.start, extent.end))
                assert not (blocks & claimed)
                claimed |= blocks
