"""Discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simos.engine import Engine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.call_at(3.0, fired.append, "c")
        engine.call_at(1.0, fired.append, "a")
        engine.call_at(2.0, fired.append, "b")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = Engine()
        fired = []
        for name in "abcde":
            engine.call_at(1.0, fired.append, name)
        engine.run()
        assert fired == list("abcde")

    def test_call_after_relative(self):
        engine = Engine()
        times = []
        engine.call_after(0.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [0.5]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        engine.call_at(7.5, lambda: None)
        engine.run()
        assert engine.now == 7.5

    def test_no_past_scheduling(self):
        engine = Engine()
        engine.call_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(4.0, lambda: None)

    def test_no_negative_delay(self):
        with pytest.raises(SimulationError):
            Engine().call_after(-1.0, lambda: None)

    def test_no_infinite_time(self):
        with pytest.raises(SimulationError):
            Engine().call_at(float("inf"), lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.call_at(1.0, fired.append, "x")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()

    def test_pending_counts_exclude_cancelled(self):
        engine = Engine()
        keep = engine.call_at(1.0, lambda: None)
        drop = engine.call_at(2.0, lambda: None)
        drop.cancel()
        assert engine.pending == 1


class TestRunControl:
    def test_run_until_stops_at_horizon(self):
        engine = Engine()
        fired = []
        engine.call_at(1.0, fired.append, "a")
        engine.call_at(10.0, fired.append, "b")
        engine.run(until=5.0)
        assert fired == ["a"]
        assert engine.now == 5.0  # clock tiles to the horizon

    def test_run_resumes_where_it_stopped(self):
        engine = Engine()
        fired = []
        engine.call_at(10.0, fired.append, "b")
        engine.run(until=5.0)
        engine.run(until=15.0)
        assert fired == ["b"]

    def test_max_events_budget(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.call_at(float(i), fired.append, i)
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_can_schedule_events(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                engine.call_after(1.0, chain, n + 1)

        engine.call_at(0.0, chain, 0)
        engine.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert engine.now == 5.0

    def test_step_returns_false_when_empty(self):
        assert not Engine().step()

    def test_drain(self):
        engine = Engine()
        engine.call_at(1.0, lambda: None)
        engine.drain()
        assert engine.pending == 0


class TestPendingAccounting:
    """The O(1) pending counter must always equal an O(n) heap scan."""

    @staticmethod
    def _scan(engine):
        return sum(1 for h in engine._heap if not h.cancelled)

    def test_counter_matches_scan_through_lifecycle(self):
        engine = Engine()
        handles = [engine.call_at(float(i), lambda: None) for i in range(50)]
        assert engine.pending == self._scan(engine) == 50
        for handle in handles[::2]:
            handle.cancel()
        assert engine.pending == self._scan(engine) == 25
        engine.run(until=10.0)
        assert engine.pending == self._scan(engine)
        engine.run()
        assert engine.pending == self._scan(engine) == 0

    @given(st.lists(st.tuples(st.floats(0.0, 100.0), st.booleans()), max_size=120))
    def test_counter_matches_scan_random(self, entries):
        engine = Engine()
        for t, keep in entries:
            handle = engine.call_at(t, lambda: None)
            if not keep:
                handle.cancel()
        assert engine.pending == self._scan(engine)
        engine.run(until=50.0)
        assert engine.pending == self._scan(engine)

    def test_compaction_shrinks_heap(self):
        engine = Engine()
        keep = engine.call_at(1e6, lambda: None)
        handles = [engine.call_at(float(i + 1), lambda: None) for i in range(500)]
        for handle in handles:
            handle.cancel()
        # Cancelled entries dominated the heap, so it was rebuilt.
        assert len(engine._heap) < 100
        assert engine.pending == 1
        engine.run()
        assert engine.events_fired == 1
        assert keep.fn is None  # fired handles are consumed

    def test_compaction_preserves_order(self):
        engine = Engine()
        fired = []
        for i in range(100):
            engine.call_at(float(i), fired.append, i)
        victims = [engine.call_at(float(i % 100) + 0.5, lambda: None) for i in range(300)]
        for v in victims:
            v.cancel()  # triggers compaction mid-stream
        engine.run()
        assert fired == list(range(100))

    def test_cancel_after_drain_keeps_counts_consistent(self):
        engine = Engine()
        handle = engine.call_at(1.0, lambda: None)
        engine.drain()
        handle.cancel()  # must be a no-op, not a decrement
        assert engine.pending == 0
        engine.call_at(2.0, lambda: None)
        assert engine.pending == 1
        engine.run()
        assert engine.pending == 0

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.call_at(1.0, lambda: None)
        engine.run()
        handle.cancel()
        assert engine.pending == 0


class TestProperties:
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=200))
    def test_arbitrary_schedules_fire_sorted(self, times):
        engine = Engine()
        fired = []
        for t in times:
            engine.call_at(t, lambda t=t: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.tuples(st.floats(0.0, 100.0), st.booleans()), max_size=100))
    def test_cancellation_subset_fires(self, entries):
        engine = Engine()
        fired = []
        expected = 0
        for t, keep in entries:
            handle = engine.call_at(t, lambda: fired.append(None))
            if keep:
                expected += 1
            else:
                handle.cancel()
        engine.run()
        assert len(fired) == expected


class TestPostAPI:
    """post_at/post_after: the allocation-free, handle-less hot path."""

    def test_post_at_fires_in_time_order(self):
        engine = Engine()
        fired = []
        engine.post_at(2.0, fired.append, "b")
        engine.post_at(1.0, fired.append, "a")
        engine.post_at(3.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_post_after_is_relative(self):
        engine = Engine()
        when = []
        engine.post_at(5.0, lambda: engine.post_after(2.5, lambda: when.append(engine.now)))
        engine.run()
        assert when == [7.5]

    def test_posts_and_handles_interleave_fifo(self):
        engine = Engine()
        fired = []
        engine.post_at(1.0, fired.append, "post-first")
        engine.call_at(1.0, fired.append, "handle-second")
        engine.post_at(1.0, fired.append, "post-third")
        engine.run()
        assert fired == ["post-first", "handle-second", "post-third"]

    def test_post_rejects_past_and_nonfinite_times(self):
        engine = Engine()
        engine.post_at(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="before current time"):
            engine.post_at(0.5, lambda: None)
        with pytest.raises(SimulationError, match="must be finite"):
            engine.post_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError, match="must be finite"):
            engine.post_at(float("nan"), lambda: None)
        with pytest.raises(SimulationError, match="non-negative"):
            engine.post_after(-1.0, lambda: None)

    def test_post_counts_in_pending_and_events_fired(self):
        engine = Engine()
        engine.post_at(1.0, lambda: None)
        engine.post_after(2.0, lambda: None)
        assert engine.pending == 2
        engine.run()
        assert engine.pending == 0
        assert engine.events_fired == 2

    def test_post_args_are_forwarded(self):
        engine = Engine()
        seen = []
        engine.post_at(1.0, lambda a, b, c: seen.append((a, b, c)), 1, "x", None)
        engine.run()
        assert seen == [(1, "x", None)]

    def test_drain_discards_posts_and_handles(self):
        engine = Engine()
        engine.post_at(1.0, lambda: None)
        handle = engine.call_at(2.0, lambda: None)
        engine.drain()
        assert engine.pending == 0
        assert engine._heap == []
        handle.cancel()  # late cancel after drain stays a no-op
        assert engine.pending == 0

    def test_fired_handle_reports_cancelled(self):
        engine = Engine()
        handle = engine.call_at(1.0, lambda: None)
        assert handle.fn is not None
        assert handle.args == ()
        engine.run()
        # Fired handles are marked consumed: fn/args read as cancelled.
        assert handle.cancelled
        assert handle.fn is None
        assert handle.when == 1.0

    def test_run_until_with_posts_only(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.post_at(float(i), fired.append, i)
        assert engine.run(until=2.5) == 2.5
        assert fired == [0, 1, 2]
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_max_events_with_posts(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.post_at(float(i), fired.append, i)
        engine.run(max_events=2)
        assert fired == [0, 1]
