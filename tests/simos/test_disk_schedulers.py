"""Disk queue disciplines: throughput vs fairness."""

from __future__ import annotations

import random

import pytest

from repro.simos.disk import Disk
from repro.simos.engine import Engine, SimulationError


def run_batch(scheduler: str, n: int = 120, seed: int = 3):
    """Serve ``n`` random requests queued up front; return (disk, makespan)."""
    engine = Engine()
    disk = Disk(engine, scheduler=scheduler, seed=seed)
    rng = random.Random(seed)
    remaining = [n]

    def done():
        remaining[0] -= 1

    for _ in range(n):
        disk.submit("read", rng.randrange(1_000_000), 8192, done)
    engine.run()
    assert remaining[0] == 0
    return disk, engine.now


class TestSchedulers:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Disk(Engine(), scheduler="magic")

    def test_favor_small_maps_to_smallest(self):
        disk = Disk(Engine(), favor_small=True)
        assert disk._scheduler == "smallest"

    def test_all_schedulers_complete_the_batch(self):
        for scheduler in Disk.SCHEDULERS:
            disk, makespan = run_batch(scheduler)
            assert disk.stats.requests == 120
            assert makespan > 0

    def test_sstf_beats_fcfs_on_makespan(self):
        """Seek-optimizing disciplines raise throughput on a deep queue."""
        _, fcfs = run_batch("fcfs")
        _, sstf = run_batch("sstf")
        assert sstf < 0.8 * fcfs

    def test_elevator_beats_fcfs_on_makespan(self):
        _, fcfs = run_batch("fcfs")
        _, elevator = run_batch("elevator")
        assert elevator < 0.85 * fcfs

    def test_sstf_starves_distant_requests(self):
        """SSTF's positional favoritism: under a steady stream of requests
        near the head, a distant request waits far longer than under the
        elevator — the kind of scheduling asymmetry section 3 warns breaks
        the symmetric-contention assumption."""

        def far_completion(scheduler: str) -> float:
            engine = Engine()
            disk = Disk(engine, scheduler=scheduler, seed=5)
            rng = random.Random(5)
            far_done: list[float] = []
            # Prime the queue with near work, then add the distant request,
            # then keep near work arriving slightly faster than service.
            for _ in range(5):
                disk.submit("read", rng.randrange(20_000), 8192, lambda: None)
            disk.submit("read", 1_000_000, 8192, lambda: far_done.append(engine.now))

            def feed(i: int = 0):
                if i >= 150:
                    return
                disk.submit("read", rng.randrange(20_000), 8192, lambda: None)
                engine.call_after(0.004, feed, i + 1)

            feed()
            engine.run()
            assert far_done
            return far_done[0]

        assert far_completion("sstf") > 2.0 * far_completion("elevator")

    def test_fcfs_preserves_arrival_order(self):
        engine = Engine()
        disk = Disk(engine, scheduler="fcfs")
        order = []
        for i, block in enumerate((900_000, 10, 500_000)):
            disk.submit("read", block, 4096, lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2]

    def test_sstf_reorders_by_position(self):
        engine = Engine()
        disk = Disk(engine, scheduler="sstf")
        order = []
        # The first request starts service immediately and parks the head
        # at the far end; SSTF then serves by proximity from there.
        disk.submit("read", 900_000, 4096, lambda: order.append("far"))
        disk.submit("read", 10, 4096, lambda: order.append("near"))
        disk.submit("read", 800_000, 4096, lambda: order.append("far2"))
        engine.run()
        assert order == ["far", "far2", "near"]
