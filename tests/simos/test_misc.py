"""Performance counters, traces, and workload schedules."""

from __future__ import annotations

import pytest

from repro.core.errors import RegulationStateError
from repro.core.signtest import Judgment
from repro.simos.effects import Delay
from repro.simos.kernel import Kernel
from repro.simos.perfcounters import PerfCounterRegistry
from repro.simos.trace import DutyTrace
from repro.simos.trace import TestpointTrace as PointTrace
from repro.simos.workload import bursty_schedule, busy_fraction, is_busy


class TestPerfCounters:
    def test_publish_and_read(self):
        reg = PerfCounterRegistry()
        counter = reg.publish("app", "ops")
        counter.add(5.0)
        counter.add(2.0)
        assert reg.read("app", "ops") == 7.0

    def test_publish_is_idempotent(self):
        reg = PerfCounterRegistry()
        a = reg.publish("app", "ops")
        b = reg.publish("app", "ops")
        assert a is b

    def test_set_overwrites(self):
        reg = PerfCounterRegistry()
        counter = reg.publish("app", "gauge")
        counter.set(42.0)
        counter.set(10.0)
        assert counter.value == 10.0

    def test_negative_increment_rejected(self):
        counter = PerfCounterRegistry().publish("app", "ops")
        with pytest.raises(ValueError):
            counter.add(-1.0)

    def test_unknown_counter_rejected(self):
        reg = PerfCounterRegistry()
        with pytest.raises(RegulationStateError):
            reg.read("ghost", "ops")

    def test_read_all(self):
        reg = PerfCounterRegistry()
        reg.publish("app", "a").add(1)
        reg.publish("app", "b").add(2)
        reg.publish("other", "c").add(3)
        assert reg.read_all("app") == {"a": 1.0, "b": 2.0}
        assert reg.processes() == ("app", "other")


class TestDutyTrace:
    def test_records_executing_intervals(self):
        kernel = Kernel()
        duty = DutyTrace(kernel, blocked_labels=("manners",))

        def body():
            yield Delay(1.0)
            yield Delay(1.0)

        thread = kernel.spawn("t", body())
        duty.watch(thread)
        kernel.run()
        # Sleeping counts as executing (it is not a manners block).
        assert duty.duty_fraction(thread, 0.0, 2.0) == pytest.approx(1.0)

    def test_suspension_counts_as_blocked(self):
        kernel = Kernel()
        duty = DutyTrace(kernel)

        def body():
            yield Delay(10.0)

        thread = kernel.spawn("t", body())
        duty.watch(thread)
        kernel.engine.call_at(2.0, kernel.suspend_thread, thread)
        kernel.engine.call_at(6.0, kernel.resume_thread, thread)
        kernel.run()
        assert duty.executing_time(thread, 0.0, 10.0) == pytest.approx(6.0, abs=0.1)

    def test_binned_series(self):
        kernel = Kernel()
        duty = DutyTrace(kernel)

        def body():
            yield Delay(4.0)

        thread = kernel.spawn("t", body())
        duty.watch(thread)
        kernel.engine.call_at(2.0, kernel.suspend_thread, thread)
        kernel.run(until=4.0)
        bins = duty.binned(thread, 0.0, 4.0, 1.0)
        assert [round(f) for _, f in bins] == [1, 1, 0, 0]

    def test_untraced_thread_rejected(self):
        kernel = Kernel()
        duty = DutyTrace(kernel)

        def body():
            yield Delay(1.0)

        thread = kernel.spawn("t", body())
        with pytest.raises(KeyError):
            duty.series(thread)


class TestTestpointTrace:
    def test_normalized_progress_series(self):
        trace = PointTrace()
        # First window: measured == target (ratio 1); second: measured 2x.
        for i in range(4):
            trace.record(0.1 + i * 0.2, 0.2, 0.2, Judgment.GOOD, 0.0)
        for i in range(4):
            trace.record(2.1 + i * 0.2, 0.2, 0.1, Judgment.POOR, 1.0)
        series = trace.normalized_progress(0.0, 4.0, window=2.0)
        assert series[0][1] == pytest.approx(1.0)
        assert series[1][1] == pytest.approx(0.5)

    def test_mean_target_duration_windowing(self):
        trace = PointTrace()
        trace.record(1.0, 0.5, 0.4, None, 0.0)
        trace.record(5.0, 0.5, 0.8, None, 0.0)
        assert trace.mean_target_duration(0.0, 2.0) == pytest.approx(0.4)
        assert trace.mean_target_duration(0.0, 10.0) == pytest.approx(0.6)
        assert trace.mean_target_duration(8.0, 10.0) is None

    def test_windows_without_comparisons_skipped(self):
        trace = PointTrace()
        trace.record(1.0, 0.5, None, None, 0.0)  # bootstrap record
        assert trace.normalized_progress(0.0, 2.0, window=2.0) == []


class TestWorkloadSchedules:
    def test_bursts_ordered_and_disjoint(self):
        bursts = bursty_schedule(100_000.0, seed=1)
        for a, b in zip(bursts, bursts[1:]):
            assert a.end <= b.start
        assert all(b.duration > 0 for b in bursts)

    def test_burst_durations_in_range(self):
        bursts = bursty_schedule(200_000.0, seed=2, burst_range=(10.0, 900.0))
        for burst in bursts[:-1]:  # last may be clipped by the horizon
            assert 10.0 <= burst.duration <= 900.0

    def test_starts_busy_for_worst_case(self):
        bursts = bursty_schedule(10_000.0, seed=3, start_busy=True)
        assert bursts[0].start == 0.0

    def test_overall_duty_near_base(self):
        total = 400_000.0
        bursts = bursty_schedule(total, seed=4, base_duty=0.5, diurnal_amplitude=0.0)
        assert busy_fraction(bursts, 0.0, total) == pytest.approx(0.5, abs=0.1)

    def test_diurnal_modulation_visible(self):
        day = 86_400.0
        bursts = bursty_schedule(
            2 * day, seed=5, diurnal_period=day, base_duty=0.5, diurnal_amplitude=0.4
        )
        # Peak quarter (around day * 0.25) busier than trough (day * 0.75).
        peak = busy_fraction(bursts, 0.1 * day, 0.4 * day)
        trough = busy_fraction(bursts, 0.6 * day, 0.9 * day)
        assert peak > trough + 0.2

    def test_is_busy(self):
        bursts = bursty_schedule(10_000.0, seed=6, start_busy=True)
        assert is_busy(bursts, bursts[0].start)
        assert not is_busy(bursts, bursts[0].end)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            bursty_schedule(0.0)
        with pytest.raises(ValueError):
            bursty_schedule(10.0, base_duty=1.5)
