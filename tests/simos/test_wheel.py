"""Hierarchical timing-wheel event core: contract parity with the heap."""

from __future__ import annotations

import pytest

from repro.simos.engine import Engine, SimulationError
from repro.simos.wheel import WheelEngine

#: One tick at the default resolution (1/128 s).
TICK = 1.0 / 128.0
#: Level horizons at the default resolution: L0 spans 256 ticks (2 s),
#: L1 spans 65536 ticks (512 s), L2 spans 2^24 ticks (131072 s).
L0_SPAN = 2.0
L1_SPAN = 512.0
L2_SPAN = 131072.0


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = WheelEngine()
        fired = []
        engine.call_at(3.0, fired.append, "c")
        engine.call_at(1.0, fired.append, "a")
        engine.call_at(2.0, fired.append, "b")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = WheelEngine()
        fired = []
        for name in "abcde":
            engine.call_at(1.0, fired.append, name)
        engine.run()
        assert fired == list("abcde")

    def test_same_tick_different_times_fire_in_time_order(self):
        # Two distinct times inside one wheel tick must still fire in
        # time order, not slot-arrival order.
        engine = WheelEngine()
        fired = []
        engine.post_at(1.0 + TICK * 0.75, fired.append, "late")
        engine.post_at(1.0 + TICK * 0.25, fired.append, "early")
        engine.run()
        assert fired == ["early", "late"]

    def test_zero_delay_posts_fire_immediately_in_order(self):
        engine = WheelEngine()
        fired = []
        engine.post_after(0.0, fired.append, "a")
        engine.post_after(0.0, fired.append, "b")
        engine.call_after(0.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now == 0.0

    def test_zero_delay_from_callback(self):
        engine = WheelEngine()
        fired = []

        def first():
            fired.append("first")
            engine.post_after(0.0, fired.append, "second")

        engine.post_at(1.0, first)
        engine.run()
        assert fired == ["first", "second"]
        assert engine.now == 1.0

    def test_no_past_scheduling(self):
        engine = WheelEngine()
        engine.call_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(4.0, lambda: None)

    def test_no_negative_delay(self):
        engine = WheelEngine()
        with pytest.raises(SimulationError):
            engine.post_after(-0.1, lambda: None)

    def test_non_finite_time_rejected(self):
        engine = WheelEngine()
        for bad in (float("inf"), float("-inf"), float("nan")):
            with pytest.raises(SimulationError):
                engine.post_at(bad, lambda: None)

    def test_resolution_bits_validated(self):
        with pytest.raises(SimulationError):
            WheelEngine(resolution_bits=-1)
        with pytest.raises(SimulationError):
            WheelEngine(resolution_bits=21)

    def test_huge_but_finite_time_accepted(self):
        # Products like when * 128 overflow to inf near float max; the
        # engine must route these to the overflow band, not crash.
        engine = WheelEngine()
        engine.post_at(1.5e306, lambda: None)
        engine.post_at(1.0, lambda: None)
        assert engine.pending == 2
        engine.run(until=2.0)
        assert engine.events_fired == 1
        assert engine.pending == 1


class TestHorizons:
    @pytest.mark.parametrize(
        "when",
        [
            TICK,
            L0_SPAN - TICK,
            L0_SPAN,
            L0_SPAN + TICK,
            L1_SPAN - TICK,
            L1_SPAN,
            L1_SPAN + TICK,
            L2_SPAN - TICK,
            L2_SPAN,
            L2_SPAN + TICK,
        ],
    )
    def test_horizon_exact_posts_fire_at_exact_time(self, when):
        engine = WheelEngine()
        times = []
        engine.post_at(when, lambda: times.append(engine.now))
        engine.run()
        assert times == [when]
        assert engine.now == when

    def test_cascade_rollover_preserves_order(self):
        # Events across every level, including pairs one tick apart that
        # straddle the L0 and L1 horizons, must fire in exact time order
        # after the cascades rehome them.
        engine = WheelEngine()
        times = [
            0.5,
            L0_SPAN - TICK,
            L0_SPAN + TICK,
            7.3,
            L1_SPAN - TICK,
            L1_SPAN + TICK,
            900.0,
            L2_SPAN + 1.0,
        ]
        fired = []
        for when in reversed(times):
            engine.post_at(when, fired.append, when)
        engine.run()
        assert fired == sorted(times)
        assert engine.events_fired == len(times)

    def test_chain_through_rollovers(self):
        # A self-rescheduling chain whose period doesn't divide the tick
        # walks the cursor through many L0 rotations and L1 cascades.
        engine = WheelEngine()
        times = []

        def tick(n):
            times.append(engine.now)
            if n:
                engine.post_after(0.9999, tick, n - 1)

        engine.post_at(0.0, tick, 4000)
        engine.run()
        assert len(times) == 4001
        assert times == sorted(times)
        assert engine.now == pytest.approx(0.9999 * 4000)

    def test_post_behind_cursor_after_bounded_run(self):
        # run(until=...) can leave the internal cursor past `until` (it
        # advances to the next occupied slot).  A later post between
        # `until` and the cursor must still fire, in order.
        engine = WheelEngine()
        fired = []
        engine.post_at(0.5, fired.append, "early")
        engine.post_at(300.0, fired.append, "far")
        engine.run(until=1.0)
        assert fired == ["early"]
        engine.post_at(5.0, fired.append, "behind-cursor")
        engine.post_at(200.0, fired.append, "mid")
        engine.run()
        assert fired == ["early", "behind-cursor", "mid", "far"]


class TestCancellation:
    def test_cancel_prevents_firing(self):
        engine = WheelEngine()
        fired = []
        handle = engine.call_at(1.0, fired.append, "x")
        engine.call_at(2.0, fired.append, "y")
        handle.cancel()
        engine.run()
        assert fired == ["y"]
        assert engine.events_fired == 1

    def test_cancel_then_fire_race_same_tick(self):
        # A callback cancels a handle scheduled for the same time that
        # is already due; the cancelled event must not fire.
        engine = WheelEngine()
        fired = []
        victim = engine.call_at(1.0, fired.append, "victim")

        def killer():
            fired.append("killer")
            victim.cancel()

        # killer was scheduled second but cancels ahead of the victim's
        # own slot position only if cancellation works mid-dispatch.
        engine.call_at(0.5, killer)
        engine.run()
        assert fired == ["killer"]

    def test_cancel_during_same_time_burst(self):
        engine = WheelEngine()
        fired = []
        handles = {}

        def cancel_next(name, target):
            fired.append(name)
            handles[target].cancel()

        handles["b"] = engine.call_at(1.0, cancel_next, "b", "c")
        handles["c"] = engine.call_at(1.0, cancel_next, "c", "b")
        engine.call_at(1.0, fired.append, "d")
        # b fires first (FIFO), cancels c; d still fires.
        engine.run()
        assert fired == ["b", "d"]

    def test_cancel_is_idempotent_and_counted_once(self):
        engine = WheelEngine()
        handle = engine.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending == 0
        engine.run()
        assert engine.events_fired == 0

    def test_compaction_bounds_stale_entries(self):
        # Cancel-heavy churn must not accumulate dead entries: the
        # threshold compaction rule keeps stale below the live count
        # (plus the trigger threshold) at every point.
        engine = WheelEngine()
        for round_ in range(200):
            handles = [
                engine.call_after(float(i % 7) + 1.0, lambda: None)
                for i in range(40)
            ]
            for handle in handles[1:]:
                handle.cancel()
            engine.step()
            assert engine._stale <= max(64, engine.pending) + 40
        total = sum(1 for _ in engine._entries())
        assert total < 500  # 8000 schedules, ~7800 cancelled: mostly gone

    def test_cancel_in_overflow_band(self):
        engine = WheelEngine()
        fired = []
        handle = engine.call_at(L2_SPAN + 50.0, fired.append, "far")
        engine.post_at(L2_SPAN + 60.0, fired.append, "farther")
        handle.cancel()
        engine.run()
        assert fired == ["farther"]


class TestRunAndDrain:
    def test_run_until_advances_clock_exactly(self):
        engine = WheelEngine()
        engine.post_at(1.0, lambda: None)
        engine.post_at(5.0, lambda: None)
        assert engine.run(until=3.0) == 3.0
        assert engine.now == 3.0
        assert engine.events_fired == 1
        assert engine.pending == 1

    def test_run_max_events_budget(self):
        engine = WheelEngine()
        fired = []
        for i in range(10):
            engine.post_at(float(i + 1), fired.append, i)
        engine.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        assert engine.pending == 6
        engine.run()
        assert fired == list(range(10))

    def test_step_returns_false_when_empty(self):
        engine = WheelEngine()
        assert engine.step() is False
        engine.post_at(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False

    def test_drain_discards_everything(self):
        engine = WheelEngine()
        fired = []
        engine.post_at(1.0, fired.append, "a")
        handle = engine.call_at(L1_SPAN + 1.0, fired.append, "b")
        engine.post_at(L2_SPAN + 1.0, fired.append, "c")
        engine.drain()
        assert engine.pending == 0
        assert handle.cancelled
        engine.run()
        assert fired == []
        assert engine.events_fired == 0

    def test_pending_counter_matches_scan(self):
        engine = WheelEngine()
        handles = [engine.call_after(float(i + 1), lambda: None) for i in range(20)]
        engine.post_after(600.0, lambda: None)
        for handle in handles[::2]:
            handle.cancel()
        live = sum(
            1
            for e in engine._entries()
            if e.__class__ is tuple or not e.cancelled
        )
        assert engine.pending == live == 11


class TestParityWithHeapEngine:
    def _drive(self, engine):
        log = []

        def fire(tag, repeats, interval):
            log.append((tag, engine.now))
            if repeats:
                engine.post_after(interval, fire, tag + 1, repeats - 1, interval)

        engine.post_after(0.0, fire, 0, 3, 0.9999)
        engine.post_after(2.0, fire, 100, 2, TICK)
        h = engine.call_after(1.5, fire, 200, 0, 1.0)
        engine.call_after(1.5, fire, 300, 1, L0_SPAN)
        h.cancel()
        engine.run(until=2.5)
        engine.post_after(510.0, fire, 400, 1, 3.0)
        engine.run(max_events=3)
        engine.run()
        return log, engine.now, engine.events_fired

    def test_identical_logs_and_counters(self):
        assert self._drive(WheelEngine()) == self._drive(Engine())

    def test_instrumented_run_matches(self):
        samples = []
        wheel = WheelEngine()
        wheel.attach_tick_observer(lambda *a: samples.append(a), sample_every=4)
        wheel_log = self._drive(wheel)
        heap = Engine()
        heap.attach_tick_observer(lambda *a: None, sample_every=4)
        assert wheel_log == self._drive(heap)
        assert samples  # the observer actually sampled

    def test_monitored_wheel_passes_invariant_audit(self):
        from repro.verify.invariants import EngineInvariantMonitor, ViolationRecorder

        recorder = ViolationRecorder(mode="raise")
        engine = WheelEngine()
        monitor = EngineInvariantMonitor(engine, recorder)
        self._drive(engine)
        monitor.detach()
        assert recorder.checks > 20
        assert recorder.ok

    def test_audit_slots_clean_after_workload(self):
        engine = WheelEngine()
        self._drive(engine)
        assert engine._audit_slots() == []


class TestKernelIntegration:
    def test_make_engine_selects_core(self):
        from repro.simos.kernel import make_engine

        assert isinstance(make_engine("wheel"), WheelEngine)
        assert isinstance(make_engine("heap"), Engine)
        assert isinstance(make_engine(), Engine)
        with pytest.raises(SimulationError):
            make_engine("calendar")

    def test_make_engine_env_override(self, monkeypatch):
        from repro.simos.kernel import make_engine

        monkeypatch.setenv("REPRO_ENGINE", "wheel")
        assert isinstance(make_engine(), WheelEngine)

    def test_kernel_runs_on_wheel_core(self):
        from repro.simos.kernel import Kernel

        kernel = Kernel(engine_core="wheel")
        assert isinstance(kernel.engine, WheelEngine)
        done = []

        def worker():
            from repro.simos.effects import Delay, UseCPU

            yield UseCPU(0.01)
            yield Delay(0.5)
            yield UseCPU(0.02)
            done.append(kernel.engine.now)

        kernel.spawn("worker", worker())
        kernel.run(until=5.0)
        assert done and done[0] > 0.5
