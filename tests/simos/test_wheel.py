"""Hierarchical timing-wheel event core: contract parity with the heap."""

from __future__ import annotations

import pytest

from repro.simos.engine import Engine, SimulationError
from repro.simos.wheel import WheelEngine

#: One tick at the default resolution (1/128 s).
TICK = 1.0 / 128.0
#: Level horizons at the default resolution: L0 spans 256 ticks (2 s),
#: L1 spans 65536 ticks (512 s), L2 spans 2^24 ticks (131072 s).
L0_SPAN = 2.0
L1_SPAN = 512.0
L2_SPAN = 131072.0


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = WheelEngine()
        fired = []
        engine.call_at(3.0, fired.append, "c")
        engine.call_at(1.0, fired.append, "a")
        engine.call_at(2.0, fired.append, "b")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = WheelEngine()
        fired = []
        for name in "abcde":
            engine.call_at(1.0, fired.append, name)
        engine.run()
        assert fired == list("abcde")

    def test_same_tick_different_times_fire_in_time_order(self):
        # Two distinct times inside one wheel tick must still fire in
        # time order, not slot-arrival order.
        engine = WheelEngine()
        fired = []
        engine.post_at(1.0 + TICK * 0.75, fired.append, "late")
        engine.post_at(1.0 + TICK * 0.25, fired.append, "early")
        engine.run()
        assert fired == ["early", "late"]

    def test_zero_delay_posts_fire_immediately_in_order(self):
        engine = WheelEngine()
        fired = []
        engine.post_after(0.0, fired.append, "a")
        engine.post_after(0.0, fired.append, "b")
        engine.call_after(0.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now == 0.0

    def test_zero_delay_from_callback(self):
        engine = WheelEngine()
        fired = []

        def first():
            fired.append("first")
            engine.post_after(0.0, fired.append, "second")

        engine.post_at(1.0, first)
        engine.run()
        assert fired == ["first", "second"]
        assert engine.now == 1.0

    def test_no_past_scheduling(self):
        engine = WheelEngine()
        engine.call_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(4.0, lambda: None)

    def test_no_negative_delay(self):
        engine = WheelEngine()
        with pytest.raises(SimulationError):
            engine.post_after(-0.1, lambda: None)

    def test_non_finite_time_rejected(self):
        engine = WheelEngine()
        for bad in (float("inf"), float("-inf"), float("nan")):
            with pytest.raises(SimulationError):
                engine.post_at(bad, lambda: None)

    def test_resolution_bits_validated(self):
        with pytest.raises(SimulationError):
            WheelEngine(resolution_bits=-1)
        with pytest.raises(SimulationError):
            WheelEngine(resolution_bits=21)

    def test_huge_but_finite_time_accepted(self):
        # Products like when * 128 overflow past the addressable tick
        # range near float max; the engine must route these to the
        # overflow band, not crash.
        engine = WheelEngine(sparse_threshold=0)
        engine.post_at(1.5e306, lambda: None)
        engine.post_at(1.0, lambda: None)
        assert engine.pending == 2
        engine.run(until=2.0)
        assert engine.events_fired == 1
        assert engine.pending == 1


class TestHorizons:
    @pytest.mark.parametrize(
        "when",
        [
            TICK,
            L0_SPAN - TICK,
            L0_SPAN,
            L0_SPAN + TICK,
            L1_SPAN - TICK,
            L1_SPAN,
            L1_SPAN + TICK,
            L2_SPAN - TICK,
            L2_SPAN,
            L2_SPAN + TICK,
        ],
    )
    def test_horizon_exact_posts_fire_at_exact_time(self, when):
        engine = WheelEngine(sparse_threshold=0)
        times = []
        engine.post_at(when, lambda: times.append(engine.now))
        engine.run()
        assert times == [when]
        assert engine.now == when

    def test_cascade_rollover_preserves_order(self):
        # Events across every level, including pairs one tick apart that
        # straddle the L0 and L1 horizons, must fire in exact time order
        # after the cascades rehome them.
        engine = WheelEngine(sparse_threshold=0)
        times = [
            0.5,
            L0_SPAN - TICK,
            L0_SPAN + TICK,
            7.3,
            L1_SPAN - TICK,
            L1_SPAN + TICK,
            900.0,
            L2_SPAN + 1.0,
        ]
        fired = []
        for when in reversed(times):
            engine.post_at(when, fired.append, when)
        engine.run()
        assert fired == sorted(times)
        assert engine.events_fired == len(times)

    def test_chain_through_rollovers(self):
        # A self-rescheduling chain whose period doesn't divide the tick
        # walks the cursor through many L0 rotations and L1 cascades.
        engine = WheelEngine(sparse_threshold=0)
        times = []

        def tick(n):
            times.append(engine.now)
            if n:
                engine.post_after(0.9999, tick, n - 1)

        engine.post_at(0.0, tick, 4000)
        engine.run()
        assert len(times) == 4001
        assert times == sorted(times)
        assert engine.now == pytest.approx(0.9999 * 4000)

    def test_post_behind_cursor_after_bounded_run(self):
        # run(until=...) can leave the internal cursor past `until` (it
        # advances to the next occupied slot).  A later post between
        # `until` and the cursor must still fire, in order.
        engine = WheelEngine(sparse_threshold=0)
        fired = []
        engine.post_at(0.5, fired.append, "early")
        engine.post_at(300.0, fired.append, "far")
        engine.run(until=1.0)
        assert fired == ["early"]
        engine.post_at(5.0, fired.append, "behind-cursor")
        engine.post_at(200.0, fired.append, "mid")
        engine.run()
        assert fired == ["early", "behind-cursor", "mid", "far"]


class TestCancellation:
    def test_cancel_prevents_firing(self):
        engine = WheelEngine()
        fired = []
        handle = engine.call_at(1.0, fired.append, "x")
        engine.call_at(2.0, fired.append, "y")
        handle.cancel()
        engine.run()
        assert fired == ["y"]
        assert engine.events_fired == 1

    def test_cancel_then_fire_race_same_tick(self):
        # A callback cancels a handle scheduled for the same time that
        # is already due; the cancelled event must not fire.
        engine = WheelEngine()
        fired = []
        victim = engine.call_at(1.0, fired.append, "victim")

        def killer():
            fired.append("killer")
            victim.cancel()

        # killer was scheduled second but cancels ahead of the victim's
        # own slot position only if cancellation works mid-dispatch.
        engine.call_at(0.5, killer)
        engine.run()
        assert fired == ["killer"]

    def test_cancel_during_same_time_burst(self):
        engine = WheelEngine()
        fired = []
        handles = {}

        def cancel_next(name, target):
            fired.append(name)
            handles[target].cancel()

        handles["b"] = engine.call_at(1.0, cancel_next, "b", "c")
        handles["c"] = engine.call_at(1.0, cancel_next, "c", "b")
        engine.call_at(1.0, fired.append, "d")
        # b fires first (FIFO), cancels c; d still fires.
        engine.run()
        assert fired == ["b", "d"]

    def test_cancel_is_idempotent_and_counted_once(self):
        engine = WheelEngine()
        handle = engine.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending == 0
        engine.run()
        assert engine.events_fired == 0

    def test_compaction_bounds_stale_entries(self):
        # Cancel-heavy churn must not accumulate dead entries: the
        # threshold compaction rule keeps stale below the live count
        # (plus the trigger threshold) at every point.
        engine = WheelEngine()
        for round_ in range(200):
            handles = [
                engine.call_after(float(i % 7) + 1.0, lambda: None)
                for i in range(40)
            ]
            for handle in handles[1:]:
                handle.cancel()
            engine.step()
            assert engine._stale <= max(64, engine.pending) + 40
        total = sum(1 for _ in engine._entries())
        assert total < 500  # 8000 schedules, ~7800 cancelled: mostly gone

    def test_cancel_in_overflow_band(self):
        engine = WheelEngine(sparse_threshold=0)
        fired = []
        handle = engine.call_at(L2_SPAN + 50.0, fired.append, "far")
        engine.post_at(L2_SPAN + 60.0, fired.append, "farther")
        handle.cancel()
        engine.run()
        assert fired == ["farther"]


class TestRunAndDrain:
    def test_run_until_advances_clock_exactly(self):
        engine = WheelEngine()
        engine.post_at(1.0, lambda: None)
        engine.post_at(5.0, lambda: None)
        assert engine.run(until=3.0) == 3.0
        assert engine.now == 3.0
        assert engine.events_fired == 1
        assert engine.pending == 1

    def test_run_max_events_budget(self):
        engine = WheelEngine()
        fired = []
        for i in range(10):
            engine.post_at(float(i + 1), fired.append, i)
        engine.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        assert engine.pending == 6
        engine.run()
        assert fired == list(range(10))

    def test_step_returns_false_when_empty(self):
        engine = WheelEngine()
        assert engine.step() is False
        engine.post_at(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False

    def test_drain_discards_everything(self):
        engine = WheelEngine()
        fired = []
        engine.post_at(1.0, fired.append, "a")
        handle = engine.call_at(L1_SPAN + 1.0, fired.append, "b")
        engine.post_at(L2_SPAN + 1.0, fired.append, "c")
        engine.drain()
        assert engine.pending == 0
        assert handle.cancelled
        engine.run()
        assert fired == []
        assert engine.events_fired == 0

    def test_pending_counter_matches_scan(self):
        engine = WheelEngine()
        handles = [engine.call_after(float(i + 1), lambda: None) for i in range(20)]
        engine.post_after(600.0, lambda: None)
        for handle in handles[::2]:
            handle.cancel()
        live = sum(
            1
            for e in engine._entries()
            if e.__class__ is tuple or not e.cancelled
        )
        assert engine.pending == live == 11


class TestParityWithHeapEngine:
    def _drive(self, engine):
        log = []

        def fire(tag, repeats, interval):
            log.append((tag, engine.now))
            if repeats:
                engine.post_after(interval, fire, tag + 1, repeats - 1, interval)

        engine.post_after(0.0, fire, 0, 3, 0.9999)
        engine.post_after(2.0, fire, 100, 2, TICK)
        h = engine.call_after(1.5, fire, 200, 0, 1.0)
        engine.call_after(1.5, fire, 300, 1, L0_SPAN)
        h.cancel()
        engine.run(until=2.5)
        engine.post_after(510.0, fire, 400, 1, 3.0)
        engine.run(max_events=3)
        engine.run()
        return log, engine.now, engine.events_fired

    def test_identical_logs_and_counters(self):
        assert self._drive(WheelEngine()) == self._drive(Engine())

    def test_instrumented_run_matches(self):
        samples = []
        wheel = WheelEngine()
        wheel.attach_tick_observer(lambda *a: samples.append(a), sample_every=4)
        wheel_log = self._drive(wheel)
        heap = Engine()
        heap.attach_tick_observer(lambda *a: None, sample_every=4)
        assert wheel_log == self._drive(heap)
        assert samples  # the observer actually sampled

    def test_monitored_wheel_passes_invariant_audit(self):
        from repro.verify.invariants import EngineInvariantMonitor, ViolationRecorder

        recorder = ViolationRecorder(mode="raise")
        engine = WheelEngine()
        monitor = EngineInvariantMonitor(engine, recorder)
        self._drive(engine)
        monitor.detach()
        assert recorder.checks > 20
        assert recorder.ok

    def test_audit_slots_clean_after_workload(self):
        engine = WheelEngine()
        self._drive(engine)
        assert engine._audit_slots() == []


class TestKernelIntegration:
    def test_make_engine_selects_core(self, monkeypatch):
        from repro.simos.kernel import make_engine

        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert isinstance(make_engine("wheel"), WheelEngine)
        assert isinstance(make_engine("heap"), Engine)
        # The wheel is the default core (PR 10): sparse bypass + adaptive
        # resolution closed the regressions that kept the heap default.
        assert isinstance(make_engine(), WheelEngine)
        with pytest.raises(SimulationError):
            make_engine("calendar")

    def test_make_engine_env_override(self, monkeypatch):
        from repro.simos.kernel import make_engine

        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert isinstance(make_engine(), Engine)
        monkeypatch.setenv("REPRO_ENGINE", "wheel")
        assert isinstance(make_engine(), WheelEngine)

    def test_make_engine_resolution_suffix(self, monkeypatch):
        from repro.simos.kernel import make_engine

        engine = make_engine("wheel:10")
        assert isinstance(engine, WheelEngine)
        assert engine.resolution_bits == 10
        assert engine._adaptive is False  # pinned resolution: no retuning
        monkeypatch.setenv("REPRO_ENGINE", "wheel:5")
        assert make_engine().resolution_bits == 5
        with pytest.raises(SimulationError):
            make_engine("heap:7")
        with pytest.raises(SimulationError):
            make_engine("wheel:fine")
        with pytest.raises(SimulationError):
            make_engine("wheel:99")

    def test_kernel_runs_on_wheel_core(self):
        from repro.simos.kernel import Kernel

        kernel = Kernel(engine_core="wheel")
        assert isinstance(kernel.engine, WheelEngine)
        done = []

        def worker():
            from repro.simos.effects import Delay, UseCPU

            yield UseCPU(0.01)
            yield Delay(0.5)
            yield UseCPU(0.02)
            done.append(kernel.engine.now)

        kernel.spawn("worker", worker())
        kernel.run(until=5.0)
        assert done and done[0] > 0.5


class TestSparseBypass:
    def test_sparse_posts_live_in_ready_band(self):
        engine = WheelEngine()
        for i in range(4):
            engine.post_after(float(i + 1), lambda: None)
        # All four posts bypassed the slot machinery.
        assert len(engine._ready) == 4
        assert engine._bm0 == engine._bm1 == engine._bm2 == 0

    def test_dense_posts_graduate_to_slots(self):
        engine = WheelEngine()
        for i in range(40):
            engine.post_after(0.25 + (i % 16) * 0.0625, lambda: None)
        assert engine._bm0 != 0  # population outgrew the bypass
        assert len(engine._ready) <= 8

    def test_mixed_band_population_fires_in_order(self):
        # Entries split across ready (early sparse posts) and slots
        # (later dense posts) must still interleave in exact time order.
        engine = WheelEngine()
        fired = []
        times = [1.75, 0.25, 1.25, 0.75, 1.5, 0.5, 1.0, 2.0]
        for t in times:
            engine.post_at(t, fired.append, t)
        for t in (0.3, 0.6, 0.9, 1.2, 1.8):
            engine.post_at(t, fired.append, t)
        engine.run()
        assert fired == sorted(times + [0.3, 0.6, 0.9, 1.2, 1.8])

    def test_bypass_matches_heap_exactly(self):
        def drive(engine):
            log = []

            def hop(n):
                log.append((engine.now, n))
                if n:
                    engine.post_after(0.37, hop, n - 1)

            engine.post_after(0.0, hop, 500)
            engine.run()
            return log, engine.now, engine.events_fired

        assert drive(WheelEngine()) == drive(Engine())

    def test_threshold_zero_disables_bypass(self):
        engine = WheelEngine(sparse_threshold=0)
        engine.post_after(1.0, lambda: None)
        assert not engine._ready
        assert engine._bm0 != 0


class TestAdaptiveResolution:
    def _fill_reservoir(self, engine, delay):
        # The reservoir samples every 64th post; drive enough posts that
        # suggest_resolution_bits has >= 32 samples.
        for _ in range(64 * 40):
            engine.post_after(delay, lambda: None)
        engine.drain()

    def test_default_engine_is_adaptive(self):
        assert WheelEngine()._adaptive is True
        assert WheelEngine(resolution_bits=7)._adaptive is False
        assert WheelEngine(resolution_bits=7, adaptive=True)._adaptive is True

    def test_static_fallback_without_samples(self):
        engine = WheelEngine()
        assert engine.suggest_resolution_bits() == 7

    def test_suggests_coarser_for_long_delays(self):
        # Delays of ~1000s at 1/128s resolution live in L2/overflow; the
        # cost model must prefer a coarser resolution that pulls them
        # into the cheap levels.
        engine = WheelEngine()
        self._fill_reservoir(engine, 1000.0)
        assert engine.suggest_resolution_bits() < 7

    def test_suggests_finer_for_sub_tick_delays(self):
        # Delays far below one tick all collide in the same tick; finer
        # resolution spreads them over slots.
        engine = WheelEngine()
        self._fill_reservoir(engine, 0.0005)
        assert engine.suggest_resolution_bits() > 7

    def test_adapt_resolution_rebuilds_and_preserves_order(self):
        engine = WheelEngine(sparse_threshold=0)
        fired = []
        times = [0.5, 3.0, 1.25, 600.0, 0.75, 131073.0, 2.0]
        for t in times:
            engine.post_at(t, fired.append, t)
        handle = engine.call_at(1.5, fired.append, "cancelled")
        handle.cancel()
        assert engine.adapt_resolution(4) is True
        assert engine.resolution_bits == 4
        assert engine.adaptations == 1
        assert engine._audit_slots() == []
        engine.run()
        assert fired == sorted(times)

    def test_adapt_resolution_noop_when_unchanged(self):
        engine = WheelEngine()
        assert engine.adapt_resolution(7) is False
        assert engine.adaptations == 0

    def test_adapt_resolution_validates_bits(self):
        engine = WheelEngine()
        with pytest.raises(SimulationError):
            engine.adapt_resolution(21)

    def test_online_adaptation_triggers_on_long_delay_workload(self):
        # A chain workload whose delays are all ~512s (deep L1/L2 at
        # 1/128s) must trigger an automatic coarsening within the first
        # adaptation window (16384 posts) — and keep firing in order.
        engine = WheelEngine(sparse_threshold=0)
        count = [0]

        def hop():
            count[0] += 1
            if count[0] < 20000:
                for _ in range(9):
                    engine.post_after(500.0 + (count[0] % 7) * 10.0, hop)

        engine.post_after(500.0, hop)
        engine.run(max_events=20000)
        assert engine.adaptations >= 1
        assert engine.resolution_bits < 7
        assert engine._audit_slots() == []

    def test_adaptation_identical_logs_vs_heap(self):
        # The adaptive wheel must stay bit-identical to the heap through
        # resolution rebuilds.
        def drive(engine):
            log = []

            def hop(tag, n, d):
                log.append((round(engine.now, 9), tag))
                if n:
                    engine.post_after(d, hop, tag, n - 1, d)

            for tag, d in ((1, 700.0), (2, 0.001), (3, 35.0)):
                engine.post_after(d, hop, tag, 6000, d)
            engine.run(max_events=17000)
            return log, engine.events_fired

        wheel = WheelEngine()
        wheel_log = drive(wheel)
        assert wheel_log == drive(Engine())
        assert wheel.adaptations >= 1  # the workload actually retuned


class TestLevels:
    def test_levels_validated(self):
        with pytest.raises(SimulationError):
            WheelEngine(levels=0)
        with pytest.raises(SimulationError):
            WheelEngine(levels=4)

    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_order_parity_across_depths(self, levels):
        # Identical event logs at every wheel depth: entries past the
        # shortened horizon ride the overflow band instead of upper
        # levels, which must be invisible except for speed.
        def drive(engine):
            fired = []
            times = [0.5, 3.0, 600.0, 1.25, 131073.0, 7.0, 0.25]
            for t in times:
                engine.post_at(t, fired.append, t)
            engine.run()
            return fired, engine.now, engine.events_fired

        assert drive(WheelEngine(levels=levels, sparse_threshold=0)) == drive(Engine())

    def test_shallow_wheel_uses_overflow_not_upper_levels(self):
        engine = WheelEngine(levels=1, sparse_threshold=0)
        engine.post_at(600.0, lambda: None)  # far past the 2s L0 horizon
        assert engine._bm1 == engine._bm2 == 0
        assert len(engine._overflow) == 1


class TestHorizonClamp:
    """Satellite regression tests: shared clamp for huge horizons."""

    def test_clamp_horizon_contract(self):
        from repro.simos.engine import TICK_INDEX_LIMIT, clamp_horizon

        assert clamp_horizon(1.5, 10.0) == 1.5
        assert clamp_horizon(float("inf"), 256.0) == 256.0
        assert clamp_horizon(2.0**70, TICK_INDEX_LIMIT) == TICK_INDEX_LIMIT
        assert clamp_horizon(2.0**70, float("inf")) == 2.0**70
        with pytest.raises(SimulationError):
            clamp_horizon(float("nan"), 10.0)

    def test_capped_backoff_shares_the_clamp(self):
        from repro.core.suspension import capped_backoff

        assert capped_backoff(1.0, 5000, 256.0) == 256.0
        assert capped_backoff(1.0, 70, float("inf")) == 2.0**70
        assert capped_backoff(1e300, 100, float("inf")) == float("inf")

    @pytest.mark.parametrize("make", [Engine, WheelEngine])
    def test_post_at_inf_raises_on_both_cores(self, make):
        engine = make()
        with pytest.raises(SimulationError):
            engine.post_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            engine.post_after(float("inf"), lambda: None)

    @pytest.mark.parametrize("make", [Engine, WheelEngine])
    def test_post_at_2_pow_70_fires_in_order_on_both_cores(self, make):
        # 2**70 seconds scales past the addressable tick range (2**70 *
        # 128 ticks/s >> 2**63) but is a legal finite event time: it must
        # schedule, order after every nearer event, and fire.
        engine = make()
        fired = []
        engine.post_at(2.0**70, fired.append, "far")
        engine.post_at(2.0**70 + 1e55, fired.append, "farther")
        engine.post_at(1.0, fired.append, "near")
        assert engine.pending == 3
        engine.run()
        assert fired == ["near", "far", "farther"]
        assert engine.now == 2.0**70 + 1e55

    def test_wheel_overflow_band_holds_past_tick_limit(self):
        engine = WheelEngine(sparse_threshold=0)
        engine.post_at(2.0**70, lambda: None)
        engine.post_at(2.0**56 / 128.0, lambda: None)  # inside the limit
        assert len(engine._overflow) == 2
        assert engine._audit_slots() == []


class TestSkipAhead:
    """Satellite property tests: idle advance is O(occupied slots)."""

    def test_idle_wheel_advance_fires_nothing_and_scans_little(self):
        # Advancing an *empty* wheel across a huge horizon must cost a
        # constant number of refill scans, not O(ticks crossed).
        engine = WheelEngine()
        before = engine._scan_iters
        engine.run(until=100000.0)  # 12.8M ticks at 1/128s
        assert engine.events_fired == 0
        assert engine.now == 100000.0
        assert engine._scan_iters - before <= 4

    @pytest.mark.parametrize("horizon", [10.0, 1000.0, 100000.0])
    def test_sparse_occupancy_advance_work_scales_with_events(self, horizon):
        # A wheel holding k events spread over an arbitrary horizon does
        # O(k) refill scans to drain, independent of the tick distance:
        # the occupancy bitmaps skip every empty slot in O(1).
        engine = WheelEngine(sparse_threshold=0)
        k = 12
        for i in range(k):
            engine.post_at(horizon * (i + 1) / k, lambda: None)
        before = engine._scan_iters
        engine.run()
        scans = engine._scan_iters - before
        # Each event costs at most a few scans (slot load + cascade
        # per level + final empty sweep); the bound must not grow with
        # the horizon.
        assert engine.events_fired == k
        assert scans <= 6 * k
        assert engine._audit_slots() == []

    def test_audit_slots_clean_after_idle_advances(self):
        engine = WheelEngine(sparse_threshold=0)
        engine.post_at(50000.0, lambda: None)
        engine.run(until=1000.0)
        assert engine._audit_slots() == []
        engine.run(until=49999.0)
        assert engine._audit_slots() == []
        engine.run()
        assert engine.events_fired == 1
        assert engine._audit_slots() == []

    def test_cancel_then_skip_ahead_race(self):
        # Cancel the only occupant of a far slot, then advance past it:
        # the skip-ahead must account the stale entry and fire nothing.
        engine = WheelEngine(sparse_threshold=0)
        fired = []
        victim = engine.call_at(5000.0, fired.append, "victim")
        engine.post_at(9000.0, fired.append, "survivor")
        victim.cancel()
        engine.run(until=8000.0)
        assert fired == []
        engine.run()
        assert fired == ["survivor"]
        assert engine.pending == 0
        assert engine._stale == 0
        assert engine._audit_slots() == []

    def test_cancel_mid_advance_from_callback(self):
        # A callback cancels a handle sitting in a future slot while the
        # cursor is mid-flight; later skip-aheads must stay consistent.
        engine = WheelEngine(sparse_threshold=0)
        fired = []
        far = engine.call_at(700.0, fired.append, "far")

        def killer():
            fired.append("killer")
            far.cancel()

        engine.post_at(1.0, killer)
        engine.post_at(900.0, fired.append, "end")
        engine.run()
        assert fired == ["killer", "end"]
        assert engine._audit_slots() == []
