"""The MS Manners bridge inside the simulator."""

from __future__ import annotations

import pytest

from repro.core.config import MannersConfig
from repro.core.errors import RegulationStateError
from repro.core.signtest import Judgment
from repro.simos.effects import Delay, DiskRead
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import MannersTestpoint, SetThreadPriority, SimManners


@pytest.fixture
def sim_config() -> MannersConfig:
    return MannersConfig(
        bootstrap_testpoints=10,
        probation_period=0.0,
        averaging_n=200,
        min_testpoint_interval=0.05,
        initial_suspension=0.5,
        max_suspension=32.0,
    )


def disk_worker(kernel, n, counter_scale=1.0, results=None, name="w"):
    done = 0.0
    for i in range(n):
        yield DiskRead("C", (i * 37) % 100_000, 65536)
        done += counter_scale
        yield MannersTestpoint((done,))
    if results is not None:
        results[name] = kernel.now


class TestRegulationFlow:
    def test_unregulated_thread_rejected(self, sim_config):
        kernel = Kernel()
        kernel.add_disk("C")
        SimManners(kernel, sim_config)

        def body():
            yield MannersTestpoint((1.0,))

        kernel.spawn("t", body())
        with pytest.raises(Exception):
            kernel.run()

    def test_double_regulation_rejected(self, sim_config):
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        thread = kernel.spawn("t", disk_worker(kernel, 10))
        manners.regulate(thread)
        with pytest.raises(RegulationStateError):
            manners.regulate(thread)

    def test_sole_thread_runs_freely_when_idle(self, sim_config):
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        results = {}
        thread = kernel.spawn("t", disk_worker(kernel, 400, results=results, name="t"))
        manners.regulate(thread)
        kernel.run()
        regulator = None  # thread exited; pull stats from the trace
        trace = manners.traces[thread]
        poors = [r for r in trace.records if r.judgment is Judgment.POOR]
        # An idle machine: very few (ideally zero) poor judgments.
        assert len(poors) <= 2
        # ~400 reads at ~11 ms: finishes in well under double the solo time.
        assert results["t"] < 10.0

    def test_contention_suspends_thread(self, sim_config):
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        thread = kernel.spawn("li", disk_worker(kernel, 2000), process="li")
        manners.regulate(thread)

        def hog():
            yield Delay(10.0)
            for i in range(600):
                yield DiskRead("C", (i * 53 + 7) % 100_000, 65536)

        kernel.spawn("hog", hog(), process="hog")
        kernel.run(until=200.0)
        trace = manners.traces.get(thread)
        poors = [r for r in trace.records if r.judgment is Judgment.POOR]
        assert poors, "contention must be recognized"
        # Delays doubled over consecutive poors.
        assert any(r.delay >= 1.0 for r in poors)

    def test_testpoint_trace_recorded(self, sim_config):
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        thread = kernel.spawn("t", disk_worker(kernel, 100))
        manners.regulate(thread)
        kernel.run()
        assert len(manners.traces[thread]) > 0


class TestIsolation:
    def test_two_threads_never_overlap(self, sim_config):
        """Time-multiplex isolation: at most one regulated thread runs."""
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        running = []

        def worker(name, n=150):
            done = 0.0
            # Priming testpoint: enter supervision before any work, as a
            # library application calling Testpoint at its top of loop does.
            yield MannersTestpoint((done,))
            for i in range(n):
                running.append((kernel.now, name, "start"))
                yield DiskRead("C", (i * 37 + len(name) * 13) % 100_000, 65536)
                running.append((kernel.now, name, "end"))
                done += 1
                yield MannersTestpoint((done,))

        t1 = kernel.spawn("w1", worker("w1"), process="p")
        t2 = kernel.spawn("w2", worker("w2"), process="p")
        manners.regulate(t1)
        manners.regulate(t2)
        kernel.run()
        # Reconstruct concurrent disk operations from the event log.
        active: set[str] = set()
        max_active = 0
        for _, name, what in sorted(running, key=lambda e: e[0]):
            if what == "start":
                active.add(name)
                max_active = max(max_active, len(active))
            else:
                active.discard(name)
        assert max_active == 1

    def test_priority_thread_gets_more_service(self, sim_config):
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        progress = {"hi": 0, "lo": 0}

        def worker(name):
            done = 0.0
            for i in range(10_000):
                yield DiskRead("C", (i * 37) % 100_000, 65536)
                done += 1
                progress[name] += 1
                yield MannersTestpoint((done,))

        t_hi = kernel.spawn("hi", worker("hi"), process="p")
        t_lo = kernel.spawn("lo", worker("lo"), process="p")
        manners.regulate(t_hi, priority=2)
        manners.regulate(t_lo, priority=0)
        kernel.run(until=30.0)
        assert progress["hi"] > 2 * progress["lo"]

    def test_processes_share_via_superintendent(self, sim_config):
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        progress = {"a": 0, "b": 0}

        def worker(name):
            done = 0.0
            for i in range(10_000):
                yield DiskRead("C", (i * 37) % 100_000, 65536)
                done += 1
                progress[name] += 1
                yield MannersTestpoint((done,))

        t_a = kernel.spawn("a", worker("a"), process="procA")
        t_b = kernel.spawn("b", worker("b"), process="procB")
        manners.regulate(t_a)
        manners.regulate(t_b)
        kernel.run(until=30.0)
        total = progress["a"] + progress["b"]
        assert total > 0
        # Machine-wide sharing: neither process monopolizes.
        assert 0.25 <= progress["a"] / total <= 0.75

    def test_set_thread_priority_effect(self, sim_config):
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)

        def worker():
            yield SetThreadPriority(5)
            done = 0.0
            for i in range(20):
                yield DiskRead("C", i * 100, 65536)
                done += 1
                yield MannersTestpoint((done,))

        thread = kernel.spawn("t", worker(), process="p")
        manners.regulate(thread)
        kernel.run()
        assert thread.state.value == "done"


class TestHungThreadIntegration:
    def test_hung_thread_releases_slot(self, sim_config):
        """A thread stalled in an external delay lets the other run."""
        config = sim_config.with_overrides(hung_threshold=5.0)
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, config)
        progress = {"stuck": 0, "busy": 0}

        def stuck():
            done = 0.0
            yield DiskRead("C", 0, 65536)
            done += 1
            yield MannersTestpoint((done,))
            # Simulates a failed network connection: a huge external delay.
            yield Delay(60.0)
            done += 1
            yield MannersTestpoint((done,))
            progress["stuck"] = done

        def busy():
            done = 0.0
            for i in range(200):
                yield DiskRead("C", (i * 37) % 100_000, 65536)
                done += 1
                progress["busy"] += 1
                yield MannersTestpoint((done,))

        t_stuck = kernel.spawn("stuck", stuck(), process="p")
        t_busy = kernel.spawn("busy", busy(), process="p")
        manners.regulate(t_stuck)
        manners.regulate(t_busy)
        kernel.run(until=120.0)
        # The busy thread made progress despite the stuck one holding the
        # slot initially.
        assert progress["busy"] >= 150
        # The stuck thread eventually completed (its post-hang testpoint
        # was discarded, not fatal).
        assert progress["stuck"] == 2.0


class TestPersistenceIntegration:
    def test_targets_persist_across_simulated_restarts(self, sim_config, tmp_path):
        """A regulated app's targets survive a 'reboot' of the machine."""
        from repro.core.persistence import TargetStore

        store = TargetStore(tmp_path)

        def run_once():
            kernel = Kernel(seed=8)
            kernel.add_disk("C")
            manners = SimManners(kernel, sim_config)
            thread = kernel.spawn("t", disk_worker(kernel, 300), process="app")
            regulator = manners.regulate(thread, store=store, app_id="app")
            kernel.run()
            store.save("app", regulator.export_state())
            return regulator

        first = run_once()
        assert first.stats.calibration_samples > 0

        # Second boot: targets load, bootstrap skipped.
        kernel = Kernel(seed=9)
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        thread = kernel.spawn("t", disk_worker(kernel, 50), process="app")
        regulator = manners.regulate(thread, store=store, app_id="app")
        assert not regulator.in_bootstrap
        kernel.run()


class TestThreeProcessSharing:
    def test_three_processes_all_progress(self, sim_config):
        """Machine-wide arbitration rotates the token across 3 processes."""
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        progress = {"a": 0, "b": 0, "c": 0}

        def worker(name):
            done = 0.0
            for i in range(10_000):
                yield DiskRead("C", (i * 37) % 100_000, 65536)
                done += 1
                progress[name] += 1
                yield MannersTestpoint((done,))

        for name in ("a", "b", "c"):
            thread = kernel.spawn(name, worker(name), process=f"proc-{name}")
            manners.regulate(thread)
        kernel.run(until=45.0)
        total = sum(progress.values())
        assert total > 0
        for name, count in progress.items():
            share = count / total
            assert 0.15 <= share <= 0.55, f"{name} share {share:.2f} unfair"

    def test_exiting_process_releases_machine(self, sim_config):
        """When one process finishes, the survivors absorb its share."""
        kernel = Kernel()
        kernel.add_disk("C")
        manners = SimManners(kernel, sim_config)
        progress = {"short": 0, "long": 0}

        def worker(name, items):
            done = 0.0
            for i in range(items):
                yield DiskRead("C", (i * 37) % 100_000, 65536)
                done += 1
                progress[name] += 1
                yield MannersTestpoint((done,))

        t_short = kernel.spawn("short", worker("short", 50), process="p-short")
        t_long = kernel.spawn("long", worker("long", 10_000), process="p-long")
        manners.regulate(t_short)
        manners.regulate(t_long)
        kernel.run(until=40.0)
        assert progress["short"] == 50  # finished
        assert progress["long"] > 1000  # inherited the whole machine
