"""CPU scheduler: strict priority + round-robin."""

from __future__ import annotations

import pytest

from repro.simos.cpu import CPU, CpuPriority
from repro.simos.engine import Engine, SimulationError


def run_bursts(requests, quantum=0.02):
    """Submit (tid, service, priority) bursts at t=0; return completion times."""
    engine = Engine()
    cpu = CPU(engine, quantum=quantum)
    done = {}
    for tid, service, priority in requests:
        cpu.request(tid, service, priority, lambda tid=tid: done.setdefault(tid, engine.now))
    engine.run()
    return done


class TestSingleThread:
    def test_burst_takes_service_time(self):
        done = run_bursts([("a", 1.0, CpuPriority.NORMAL)])
        assert done["a"] == pytest.approx(1.0)

    def test_zero_burst_completes_immediately(self):
        done = run_bursts([("a", 0.0, CpuPriority.NORMAL)])
        assert done["a"] == pytest.approx(0.0)

    def test_negative_service_rejected(self):
        engine = Engine()
        cpu = CPU(engine)
        with pytest.raises(SimulationError):
            cpu.request("a", -1.0, 0, lambda: None)

    def test_quantum_must_be_positive(self):
        with pytest.raises(SimulationError):
            CPU(Engine(), quantum=0.0)


class TestSharing:
    def test_equal_priority_shares_fairly(self):
        done = run_bursts(
            [("a", 1.0, CpuPriority.NORMAL), ("b", 1.0, CpuPriority.NORMAL)]
        )
        # Interleaved round-robin: both finish near 2.0.
        assert done["a"] == pytest.approx(2.0, abs=0.05)
        assert done["b"] == pytest.approx(2.0, abs=0.05)

    def test_strict_priority_starves_lower(self):
        done = run_bursts(
            [("hi", 1.0, CpuPriority.NORMAL), ("lo", 1.0, CpuPriority.LOW)]
        )
        assert done["hi"] == pytest.approx(1.0, abs=0.05)
        assert done["lo"] == pytest.approx(2.0, abs=0.05)

    def test_three_way_round_robin(self):
        done = run_bursts(
            [(n, 0.6, CpuPriority.NORMAL) for n in ("a", "b", "c")]
        )
        for n in ("a", "b", "c"):
            assert done[n] == pytest.approx(1.8, abs=0.1)


class TestPreemption:
    def test_higher_priority_preempts(self):
        engine = Engine()
        cpu = CPU(engine, quantum=0.02)
        done = {}
        cpu.request("lo", 1.0, CpuPriority.LOW, lambda: done.setdefault("lo", engine.now))
        # A normal-priority burst arrives mid-run.
        engine.call_at(
            0.5,
            lambda: cpu.request(
                "hi", 0.3, CpuPriority.NORMAL, lambda: done.setdefault("hi", engine.now)
            ),
        )
        engine.run()
        assert done["hi"] == pytest.approx(0.8, abs=0.05)
        assert done["lo"] == pytest.approx(1.3, abs=0.05)
        assert cpu.stats.preemptions >= 1

    def test_work_is_conserved_under_preemption(self):
        engine = Engine()
        cpu = CPU(engine)
        done = {}
        cpu.request("lo", 0.9, CpuPriority.LOW, lambda: done.setdefault("lo", engine.now))
        engine.call_at(
            0.3,
            lambda: cpu.request(
                "hi", 0.2, CpuPriority.HIGH, lambda: done.setdefault("hi", engine.now)
            ),
        )
        engine.run()
        # Total busy time equals total demanded service.
        assert cpu.stats.busy_time == pytest.approx(1.1, abs=1e-6)


class TestDebugRemoval:
    def test_remove_running_thread_returns_remaining(self):
        engine = Engine()
        cpu = CPU(engine, quantum=10.0)  # one long slice
        done = {}
        cpu.request("a", 1.0, CpuPriority.NORMAL, lambda: done.setdefault("a", engine.now))
        engine.run(until=0.4)
        remaining = cpu.remove("a")
        assert remaining == pytest.approx(0.6, abs=0.01)
        engine.run()
        assert "a" not in done  # never completed

    def test_remove_queued_thread(self):
        engine = Engine()
        cpu = CPU(engine)
        done = {}
        cpu.request("a", 1.0, CpuPriority.NORMAL, lambda: done.setdefault("a", engine.now))
        cpu.request("b", 1.0, CpuPriority.NORMAL, lambda: done.setdefault("b", engine.now))
        remaining = cpu.remove("b")
        assert remaining == pytest.approx(1.0)
        engine.run()
        assert done["a"] == pytest.approx(1.0, abs=0.05)
        assert "b" not in done

    def test_remove_unknown_returns_none(self):
        assert CPU(Engine()).remove("ghost") is None


class TestAccounting:
    def test_thread_time_tracks_consumption(self):
        engine = Engine()
        cpu = CPU(engine)
        cpu.request("a", 0.5, CpuPriority.NORMAL, lambda: None)
        engine.run()
        assert cpu.thread_time("a") == pytest.approx(0.5)

    def test_utilization(self):
        engine = Engine()
        cpu = CPU(engine)
        cpu.request("a", 1.0, CpuPriority.NORMAL, lambda: None)
        engine.run()
        engine.call_at(2.0, lambda: None)
        engine.run()
        assert cpu.utilization() == pytest.approx(0.5, abs=0.01)
