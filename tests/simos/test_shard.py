"""Sharded fleet execution: bit-identical digests regardless of layout."""

from __future__ import annotations

from functools import partial

import pytest

from repro.simos.engine import SimulationError
from repro.simos.shard import ChainMachine, ShardedFleet
from repro.simos.wheel import WheelEngine

#: Small fleet shape shared by the parity tests: big enough that every
#: shard owns several machines and messages cross every boundary, small
#: enough to keep the suite fast.
MACHINES = 12
ROUNDS = 6


def _digest(shards: int, seed: int) -> tuple[str, int, int]:
    with ShardedFleet(MACHINES, shards=shards, seed=seed) as fleet:
        result = fleet.run(ROUNDS)
    return result.digest, result.events_fired, result.messages_routed


class TestDigestParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shards_1_vs_4_bit_identical(self, seed):
        assert _digest(1, seed) == _digest(4, seed)

    def test_shards_2_and_3_agree_too(self):
        # Parity must hold for any layout, including shard counts that
        # do not divide the machine count evenly.
        assert _digest(2, 7) == _digest(3, 7)

    def test_different_seeds_differ(self):
        assert _digest(1, 0)[0] != _digest(1, 1)[0]

    def test_repeat_run_is_reproducible(self):
        assert _digest(4, 5) == _digest(4, 5)


class TestChainMachine:
    def test_deterministic_construction(self):
        a = ChainMachine(3, 8, seed=42)
        b = ChainMachine(3, 8, seed=42)
        a.engine.run(until=2.0)
        b.engine.run(until=2.0)
        assert a.snapshot() == b.snapshot()

    def test_runs_on_wheel_core_by_default(self):
        machine = ChainMachine(0, 4, seed=0)
        assert isinstance(machine.engine, WheelEngine)

    def test_pings_are_emitted_and_delivered(self):
        with ShardedFleet(4, shards=1, seed=0) as fleet:
            result = fleet.run(8)
        assert result.messages_routed > 0
        assert sum(s["pings_in"] for s in result.snapshots) > 0
        assert result.events_fired == sum(
            s["events_fired"] for s in result.snapshots
        )

    def test_machine_id_validated(self):
        with pytest.raises(SimulationError):
            ChainMachine(4, 4, seed=0)
        with pytest.raises(SimulationError):
            ChainMachine(-1, 4, seed=0)


class TestFleetLifecycle:
    def test_invalid_shapes_rejected(self):
        with pytest.raises(SimulationError):
            ShardedFleet(0)
        with pytest.raises(SimulationError):
            ShardedFleet(4, shards=0)
        fleet = ShardedFleet(2, shards=1)
        with pytest.raises(SimulationError):
            fleet.run(0)
        with pytest.raises(SimulationError):
            fleet.run(1, tick=0.0)

    def test_shards_clamped_to_machines(self):
        with ShardedFleet(2, shards=8, seed=0) as fleet:
            assert fleet.shards == 2
            result = fleet.run(2)
        assert result.shards == 2

    def test_close_is_idempotent(self):
        fleet = ShardedFleet(4, shards=2, seed=0)
        fleet.run(2)
        fleet.close()
        fleet.close()

    def test_custom_machine_parameters_thread_through(self):
        make = partial(ChainMachine, chains=8, ping_every=4)
        with ShardedFleet(6, make, shards=3, seed=1) as sharded:
            a = sharded.run(4)
        b = ShardedFleet(6, make, shards=1, seed=1).run(4)
        assert a.digest == b.digest
        assert a.messages_routed == b.messages_routed


class TestBenchReport:
    def test_engine_sharded_report_parity(self):
        from repro.analysis.hotpath import engine_sharded_report

        report = engine_sharded_report(
            machines=4, shards=2, rounds=3, chains=32, repeats=1
        )
        assert report["parity_ok"] is True
        assert report["events_per_sec"] > 0
        assert report["shards"] == 2

    def test_resolve_shards_precedence(self, monkeypatch):
        from repro.analysis.parallel import resolve_shards

        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(3) == 3
        assert resolve_shards(8, machines=5) == 5
        assert resolve_shards(None, default=2) == 2
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(None, default=2) == 4
        with pytest.raises(ValueError):
            resolve_shards(0)
