"""Sharded fleet execution: bit-identical digests regardless of layout."""

from __future__ import annotations

from functools import partial

import pytest

from repro.simos.engine import SimulationError
from repro.simos.shard import ChainMachine, ShardedFleet
from repro.simos.wheel import WheelEngine

#: Small fleet shape shared by the parity tests: big enough that every
#: shard owns several machines and messages cross every boundary, small
#: enough to keep the suite fast.
MACHINES = 12
ROUNDS = 6


def _digest(shards: int, seed: int) -> tuple[str, int, int]:
    with ShardedFleet(MACHINES, shards=shards, seed=seed) as fleet:
        result = fleet.run(ROUNDS)
    return result.digest, result.events_fired, result.messages_routed


class TestDigestParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shards_1_vs_4_bit_identical(self, seed):
        assert _digest(1, seed) == _digest(4, seed)

    def test_shards_2_and_3_agree_too(self):
        # Parity must hold for any layout, including shard counts that
        # do not divide the machine count evenly.
        assert _digest(2, 7) == _digest(3, 7)

    def test_different_seeds_differ(self):
        assert _digest(1, 0)[0] != _digest(1, 1)[0]

    def test_repeat_run_is_reproducible(self):
        assert _digest(4, 5) == _digest(4, 5)


class TestChainMachine:
    def test_deterministic_construction(self):
        a = ChainMachine(3, 8, seed=42)
        b = ChainMachine(3, 8, seed=42)
        a.engine.run(until=2.0)
        b.engine.run(until=2.0)
        assert a.snapshot() == b.snapshot()

    def test_runs_on_wheel_core_by_default(self):
        machine = ChainMachine(0, 4, seed=0)
        assert isinstance(machine.engine, WheelEngine)

    def test_pings_are_emitted_and_delivered(self):
        with ShardedFleet(4, shards=1, seed=0) as fleet:
            result = fleet.run(8)
        assert result.messages_routed > 0
        assert sum(s["pings_in"] for s in result.snapshots) > 0
        assert result.events_fired == sum(
            s["events_fired"] for s in result.snapshots
        )

    def test_machine_id_validated(self):
        with pytest.raises(SimulationError):
            ChainMachine(4, 4, seed=0)
        with pytest.raises(SimulationError):
            ChainMachine(-1, 4, seed=0)


class TestFleetLifecycle:
    def test_invalid_shapes_rejected(self):
        with pytest.raises(SimulationError):
            ShardedFleet(0)
        with pytest.raises(SimulationError):
            ShardedFleet(4, shards=0)
        fleet = ShardedFleet(2, shards=1)
        with pytest.raises(SimulationError):
            fleet.run(0)
        with pytest.raises(SimulationError):
            fleet.run(1, tick=0.0)

    def test_shards_clamped_to_machines(self):
        with ShardedFleet(2, shards=8, seed=0) as fleet:
            assert fleet.shards == 2
            result = fleet.run(2)
        assert result.shards == 2

    def test_close_is_idempotent(self):
        fleet = ShardedFleet(4, shards=2, seed=0)
        fleet.run(2)
        fleet.close()
        fleet.close()

    def test_custom_machine_parameters_thread_through(self):
        make = partial(ChainMachine, chains=8, ping_every=4)
        with ShardedFleet(6, make, shards=3, seed=1) as sharded:
            a = sharded.run(4)
        b = ShardedFleet(6, make, shards=1, seed=1).run(4)
        assert a.digest == b.digest
        assert a.messages_routed == b.messages_routed


class TestBenchReport:
    def test_engine_sharded_report_parity(self):
        from repro.analysis.hotpath import engine_sharded_report

        report = engine_sharded_report(
            machines=4, shards=2, rounds=3, chains=32, repeats=1
        )
        assert report["parity_ok"] is True
        assert report["events_per_sec"] > 0
        assert report["shards"] == 2

    def test_resolve_shards_precedence(self, monkeypatch):
        from repro.analysis.parallel import resolve_shards

        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(3) == 3
        assert resolve_shards(8, machines=5) == 5
        assert resolve_shards(None, default=2) == 2
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(None, default=2) == 4
        with pytest.raises(ValueError):
            resolve_shards(0)

class TestWorkStealing:
    """Work-stealing rebalancing: deterministic decisions, digest parity."""

    def _skewed(self, shards, seed=5, **kw):
        from repro.simos.shard import skewed_machine

        return ShardedFleet(
            16, make_machine=skewed_machine, shards=shards, seed=seed, **kw
        )

    def test_skewed_machine_is_imbalanced(self):
        from repro.simos.shard import skewed_machine

        heavy = skewed_machine(0, 16, seed=0)
        light = skewed_machine(1, 16, seed=0)
        heavy.engine.run(until=2.0)
        light.engine.run(until=2.0)
        assert heavy.engine.events_fired > 4 * light.engine.events_fired

    def test_stealing_migrates_and_preserves_digest(self):
        with self._skewed(1) as flat:
            baseline = flat.run(ROUNDS)
        with self._skewed(4, rebalance=True, balance_on="events") as fleet:
            rebalanced = fleet.run(ROUNDS)
        assert rebalanced.migrations > 0
        assert rebalanced.digest == baseline.digest
        assert rebalanced.events_fired == baseline.events_fired
        assert rebalanced.messages_routed == baseline.messages_routed

    def test_events_mode_is_fully_deterministic(self):
        runs = []
        for _ in range(2):
            with self._skewed(4, rebalance=True, balance_on="events") as fleet:
                result = fleet.run(ROUNDS)
            runs.append((result.digest, result.migrations))
        assert runs[0] == runs[1]

    def test_wall_mode_keeps_digest_parity(self):
        # Wall-clock loads make the *placement* nondeterministic, but the
        # digest must not move: machine evolution is placement-independent.
        with self._skewed(1) as flat:
            baseline = flat.run(ROUNDS)
        with self._skewed(4, rebalance=True, balance_on="wall") as fleet:
            rebalanced = fleet.run(ROUNDS)
        assert rebalanced.digest == baseline.digest

    def test_balanced_fleet_does_not_thrash(self):
        # A uniform fleet never clears the 25% spread threshold in
        # events mode, so no machine should move.
        with ShardedFleet(
            12, shards=4, seed=3, rebalance=True, balance_on="events"
        ) as fleet:
            result = fleet.run(ROUNDS)
        assert result.migrations == 0
        assert result.digest == _digest(1, 3)[0]

    def test_pick_steal_is_pure_and_tie_stable(self):
        pick = ShardedFleet._pick_steal
        loads = [10.0, 2.0, 2.0]
        weights = [{0: 800, 3: 100, 6: 90}, {1: 95, 4: 95}, {2: 95, 5: 95}]
        # Gap/2 in event units: (10-2)/2/10 * 990 = 396 -> machine 0
        # (|800-396| = 404) loses to 3 (|100-396| = 296)?  No: 296 < 404,
        # so machine 3 moves; dst ties (shards 1 and 2) break low.
        assert pick(loads, weights) == (0, 1, 3)
        # Below the 25% spread threshold: no steal.
        assert pick([2.2, 2.0], [{0: 50, 1: 50}, {2: 50, 3: 50}]) is None
        # Single-machine shard never donates its last machine.
        assert pick([9.0, 1.0], [{0: 900}, {1: 100}]) is None

    def test_rebalance_validates_balance_on(self):
        with pytest.raises(SimulationError):
            ShardedFleet(4, shards=2, balance_on="cpu")

    def test_rebalance_ignored_for_single_shard(self):
        fleet = ShardedFleet(4, shards=1, rebalance=True)
        assert fleet.rebalance is False
        result = fleet.run(2)
        assert result.migrations == 0

    def test_migrated_machine_pickle_roundtrip(self):
        # The steal op ships a live machine (engine and all) through a
        # pipe; a pickle round-trip mid-run must resume the exact event
        # stream.
        import pickle

        a = ChainMachine(2, 8, seed=9)
        b = ChainMachine(2, 8, seed=9)
        a.engine.run(until=3.0)
        b.engine.run(until=3.0)
        b = pickle.loads(pickle.dumps(b))
        a.engine.run(until=6.0)
        b.engine.run(until=6.0)
        assert a.snapshot() == b.snapshot()
