"""Network link, backup agent, and the section-3 external-resource limit."""

from __future__ import annotations

import random

import pytest

from repro.apps.backup import BackupAgent
from repro.core.config import MannersConfig
from repro.core.signtest import Judgment
from repro.simos.engine import SimulationError
from repro.simos.filesystem import Volume, populate_volume
from repro.simos.kernel import Kernel
from repro.simos.network import NetSend, NetworkLink
from repro.simos.sim_manners import SimManners


def machine(seed=1, file_count=30, bandwidth=1_250_000.0):
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    volume = Volume("C", "C", total_blocks=120_000)
    rng = random.Random(seed)
    populate_volume(
        volume, rng, file_count=file_count,
        size_range=(32 * 1024, 128 * 1024), fragment_range=(1, 2),
    )
    link = NetworkLink(kernel.engine, "uplink", bandwidth=bandwidth)
    link.attach(kernel)
    return kernel, volume, link


class TestNetworkLink:
    def test_transfer_time_matches_bandwidth(self):
        kernel, volume, link = machine()
        done = []

        def body():
            yield NetSend("uplink", 1_250_000)
            done.append(kernel.now)

        kernel.spawn("t", body())
        kernel.run()
        # 1.25 MB at 1.25 MB/s plus latency.
        assert done[0] == pytest.approx(1.0 + link.latency, rel=0.02)

    def test_congestion_slows_transfers(self):
        kernel, volume, link = machine()
        link.set_congestion(4.0)
        done = []

        def body():
            yield NetSend("uplink", 1_250_000)
            done.append(kernel.now)

        kernel.spawn("t", body())
        kernel.run()
        assert done[0] == pytest.approx(4.0 + link.latency, rel=0.02)

    def test_transfers_serialize(self):
        kernel, volume, link = machine()
        order = []

        def sender(name):
            yield NetSend("uplink", 625_000)
            order.append((name, kernel.now))

        kernel.spawn("a", sender("a"))
        kernel.spawn("b", sender("b"))
        kernel.run()
        assert order[0][1] == pytest.approx(0.5, abs=0.05)
        assert order[1][1] == pytest.approx(1.0, abs=0.05)

    def test_unknown_link_fails(self):
        kernel, volume, link = machine()

        def body():
            yield NetSend("wan", 100)

        kernel.spawn("t", body())
        with pytest.raises(SimulationError):
            kernel.run()

    def test_duplicate_attach_rejected(self):
        kernel, volume, link = machine()
        dup = NetworkLink(kernel.engine, "uplink")
        with pytest.raises(SimulationError):
            dup.attach(kernel)

    def test_congestion_validation(self):
        kernel, volume, link = machine()
        with pytest.raises(SimulationError):
            link.set_congestion(0.5)


class TestBackupAgent:
    def test_backs_up_every_file(self):
        kernel, volume, link = machine()
        backup = BackupAgent(kernel, volume, "uplink")
        backup.spawn()
        kernel.run()
        assert backup.stats.files_backed_up == 30
        assert backup.stats.bytes_uploaded == link.stats.bytes_sent
        assert backup.result.elapsed is not None

    def test_single_metric_covers_disk_and_network(self):
        """Regulated backup on an idle machine runs unimpeded."""
        kernel, volume, link = machine()
        config = MannersConfig(
            bootstrap_testpoints=10, probation_period=0.0, averaging_n=200,
            min_testpoint_interval=0.05, initial_suspension=0.5, max_suspension=16.0,
        )
        manners = SimManners(kernel, config)
        backup = BackupAgent(kernel, volume, "uplink", manners=manners)
        thread = backup.spawn()
        kernel.run(until=600.0)
        assert backup.result.elapsed is not None
        trace = manners.traces[thread]
        poors = sum(1 for r in trace.records if r.judgment is Judgment.POOR)
        assert poors <= 2


class TestExternalResourceLimitation:
    def test_remote_congestion_triggers_suspension(self):
        """Section 3, demonstrated: congestion *outside the machine* slows
        the backup's progress, and resource-independent regulation
        suspends it even though the local machine is idle — 'which may
        not be as desired'."""
        kernel, volume, link = machine(file_count=200)
        config = MannersConfig(
            bootstrap_testpoints=10, probation_period=0.0, averaging_n=200,
            min_testpoint_interval=0.05, initial_suspension=0.5, max_suspension=16.0,
        )
        manners = SimManners(kernel, config)
        backup = BackupAgent(kernel, volume, "uplink", manners=manners)
        thread = backup.spawn()
        # Remote congestion arrives at t = 5 s.
        kernel.engine.call_at(5.0, link.set_congestion, 5.0)
        kernel.run(until=60.0)
        trace = manners.traces[thread]
        poors = [r for r in trace.records if r.judgment is Judgment.POOR and r.when > 5.0]
        assert poors, "external congestion is indistinguishable from local contention"
