"""Wall-clock adapter regulating real Python threads."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.config import MannersConfig
from repro.core.errors import RegulationStateError
from repro.core.persistence import TargetStore
from repro.realtime.adapter import RealTimeRegulator

FAST_RT = MannersConfig(
    bootstrap_testpoints=5,
    probation_period=0.0,
    averaging_n=50,
    min_testpoint_interval=0.005,
    initial_suspension=0.05,
    max_suspension=0.4,
    hung_threshold=5.0,
)


class TestSingleThread:
    def test_unimpeded_when_alone(self):
        regulator = RealTimeRegulator(FAST_RT)
        count = 0.0
        start = time.monotonic()
        for _ in range(60):
            time.sleep(0.002)
            count += 1.0
            regulator.testpoint([count])
        elapsed = time.monotonic() - start
        # ~0.12 s of work; regulation overhead must stay small.
        assert elapsed < 1.0
        regulator.release()

    def test_decision_returned(self):
        regulator = RealTimeRegulator(FAST_RT)
        decision = regulator.testpoint([0.0])
        assert decision.processed

    def test_closed_regulator_rejects(self):
        regulator = RealTimeRegulator(FAST_RT)
        regulator.testpoint([0.0])
        regulator.close()
        with pytest.raises(RegulationStateError):
            regulator.testpoint([1.0])

    def test_context_manager(self):
        with RealTimeRegulator(FAST_RT) as regulator:
            regulator.testpoint([0.0])


class TestMultiThread:
    def test_two_threads_share(self):
        regulator = RealTimeRegulator(FAST_RT)
        done = {"a": 0, "b": 0}
        stop = time.monotonic() + 1.5

        def worker(name):
            count = 0.0
            while time.monotonic() < stop:
                time.sleep(0.002)
                count += 1.0
                regulator.testpoint([count])
                done[name] += 1
            regulator.release()

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert done["a"] > 20 and done["b"] > 20
        ratio = done["a"] / max(done["b"], 1)
        assert 0.4 <= ratio <= 2.5  # decay-usage sharing is roughly fair

    def test_priority_registration(self):
        regulator = RealTimeRegulator(FAST_RT)
        regulator.register(priority=3)
        tid = threading.get_ident()
        assert tid in regulator.supervisor.thread_ids()
        regulator.set_priority(5)
        regulator.release()

    def test_close_unblocks_waiters(self):
        regulator = RealTimeRegulator(FAST_RT)
        errors = []
        started = threading.Event()

        def worker():
            count = 0.0
            try:
                for _ in range(10_000):
                    count += 1.0
                    regulator.testpoint([count])
                    started.set()
            except RegulationStateError:
                pass  # expected once closed
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        started.wait(timeout=5.0)
        regulator.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert errors == []


class TestPersistence:
    def test_targets_survive_restart(self, tmp_path):
        store = TargetStore(tmp_path)
        first = RealTimeRegulator(FAST_RT, app_id="rt-app", store=store)
        count = 0.0
        for _ in range(40):
            time.sleep(0.001)
            count += 1.0
            first.testpoint([count])
        first.close()
        assert store.load("rt-app") is not None

        second = RealTimeRegulator(FAST_RT, app_id="rt-app", store=store)
        second.testpoint([0.0])
        tid = threading.get_ident()
        assert not second.supervisor.regulator(tid).in_bootstrap
        second.close()

    def test_app_id_requires_store(self):
        with pytest.raises(ValueError):
            RealTimeRegulator(FAST_RT, app_id="x")


class TestSignalHandlers:
    """SIGTERM/SIGINT flush: close() always persists pending targets."""

    @pytest.fixture
    def probe_signal(self):
        # A harmless signal the test can actually raise at itself.
        import signal

        original = signal.getsignal(signal.SIGUSR1)
        yield signal.SIGUSR1
        signal.signal(signal.SIGUSR1, original)

    def test_signal_flushes_pending_save(self, tmp_path, probe_signal):
        import signal

        signal.signal(probe_signal, lambda *_: None)
        store = TargetStore(tmp_path)
        regulator = RealTimeRegulator(FAST_RT, app_id="sig-app", store=store)
        regulator.testpoint([1.0])
        assert store.load("sig-app") is None  # periodic save not due yet
        assert regulator.install_signal_handlers(signals=(probe_signal,))
        signal.raise_signal(probe_signal)
        assert store.load("sig-app") is not None
        with pytest.raises(RegulationStateError):
            regulator.testpoint([2.0])

    def test_previous_handler_is_chained(self, probe_signal):
        import signal

        seen = []
        signal.signal(probe_signal, lambda signum, frame: seen.append(signum))
        regulator = RealTimeRegulator(FAST_RT)
        regulator.install_signal_handlers(signals=(probe_signal,))
        signal.raise_signal(probe_signal)
        assert seen == [probe_signal]

    def test_install_is_idempotent_and_uninstall_restores(self, probe_signal):
        import signal

        def sentinel(signum, frame):  # pragma: no cover - never raised
            pass

        signal.signal(probe_signal, sentinel)
        regulator = RealTimeRegulator(FAST_RT)
        assert regulator.install_signal_handlers(signals=(probe_signal,))
        assert regulator.install_signal_handlers(signals=(probe_signal,))
        assert signal.getsignal(probe_signal) is not sentinel
        regulator.uninstall_signal_handlers()
        assert signal.getsignal(probe_signal) is sentinel

    def test_close_uninstalls(self, probe_signal):
        import signal

        def sentinel(signum, frame):  # pragma: no cover - never raised
            pass

        signal.signal(probe_signal, sentinel)
        regulator = RealTimeRegulator(FAST_RT)
        regulator.install_signal_handlers(signals=(probe_signal,))
        regulator.close()
        assert signal.getsignal(probe_signal) is sentinel

    def test_install_off_main_thread_refuses(self):
        results = []
        regulator = RealTimeRegulator(FAST_RT)
        thread = threading.Thread(
            target=lambda: results.append(regulator.install_signal_handlers())
        )
        thread.start()
        thread.join()
        assert results == [False]
