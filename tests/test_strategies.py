"""Section-2 baseline strategies."""

from __future__ import annotations

import pytest

from repro.experiments.related import related_strategy_trial
from repro.simos.effects import Delay, UseCPU
from repro.simos.kernel import Kernel
from repro.simos.workload import Burst
from repro.strategies.baselines import InputIdleGate, ProcessQueueGate, ScheduledWindows


def spin_thread(kernel, log):
    """A worker that records the times at which it makes progress."""
    for _ in range(100_000):
        yield UseCPU(0.01)
        log.append(kernel.now)
        yield Delay(0.09)


class TestScheduledWindows:
    def test_runs_only_inside_windows(self):
        kernel = Kernel()
        log: list[float] = []
        worker = kernel.spawn("w", spin_thread(kernel, log), process="w")
        ScheduledWindows(kernel, [worker], [Burst(10.0, 20.0)]).spawn()
        kernel.run(until=30.0)
        inside = [t for t in log if 10.0 <= t <= 21.5]
        outside = [t for t in log if t < 10.0 or t > 22.0]
        assert inside
        assert len(outside) <= 2  # boundary polling slack

    def test_multiple_windows(self):
        kernel = Kernel()
        log: list[float] = []
        worker = kernel.spawn("w", spin_thread(kernel, log), process="w")
        ScheduledWindows(
            kernel, [worker], [Burst(5.0, 8.0), Burst(15.0, 18.0)]
        ).spawn()
        kernel.run(until=25.0)
        assert any(5.0 <= t <= 9.5 for t in log)
        assert any(15.0 <= t <= 19.5 for t in log)
        assert not any(10.5 <= t <= 14.5 for t in log)


class TestInputIdleGate:
    def test_waits_for_idle_threshold(self):
        kernel = Kernel()
        log: list[float] = []
        worker = kernel.spawn("w", spin_thread(kernel, log), process="w")
        InputIdleGate(kernel, [worker], last_input=lambda: 0.0, idle_threshold=10.0).spawn()
        kernel.run(until=20.0)
        assert log
        assert min(log) >= 10.0

    def test_fresh_input_suspends(self):
        kernel = Kernel()
        log: list[float] = []
        worker = kernel.spawn("w", spin_thread(kernel, log), process="w")
        last = {"t": 0.0}
        InputIdleGate(
            kernel, [worker], last_input=lambda: last["t"], idle_threshold=5.0
        ).spawn()
        # Keyboard activity at t = 10 re-suspends the worker until 15+.
        kernel.engine.call_at(10.0, lambda: last.__setitem__("t", 10.0))
        kernel.run(until=20.0)
        assert not any(11.5 <= t <= 14.0 for t in log)
        assert any(t >= 15.0 for t in log)


class TestProcessQueueGate:
    def test_starves_while_hi_process_alive(self):
        kernel = Kernel()
        log: list[float] = []
        worker = kernel.spawn("w", spin_thread(kernel, log), process="w")

        def hi_body():
            yield Delay(12.0)

        hi = kernel.spawn("hi", hi_body(), process="hi")
        ProcessQueueGate(kernel, [worker], hi_processes=lambda: (hi,)).spawn()
        kernel.run(until=20.0)
        assert not any(t < 12.0 for t in log)
        assert any(t > 13.5 for t in log)


class TestRelatedTrials:
    SCALE = 0.3

    def test_queue_scan_starves_defragmenter(self):
        r = related_strategy_trial("queue-scan", seed=7, scale=self.SCALE)
        assert not r.li_finished
        assert r.hi_time < 1.3 * r.extras["hi2_time"]

    def test_screensaver_fails_on_server(self):
        saver = related_strategy_trial("screensaver", seed=7, scale=self.SCALE)
        manners = related_strategy_trial("ms-manners", seed=7, scale=self.SCALE)
        assert saver.hi_time > 1.4 * manners.hi_time

    def test_scheduled_caught_by_unanticipated_load(self):
        r = related_strategy_trial("scheduled", seed=7, scale=self.SCALE)
        assert r.extras["hi2_time"] > 1.4 * r.hi_time

    def test_manners_wins_overall(self):
        manners = related_strategy_trial("ms-manners", seed=7, scale=self.SCALE)
        unreg = related_strategy_trial("unregulated", seed=7, scale=self.SCALE)
        assert manners.hi_time < 0.75 * unreg.hi_time
        assert manners.li_finished

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            related_strategy_trial("voodoo", seed=1)
